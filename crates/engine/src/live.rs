//! Live incremental re-solving over a churned market (`DESIGN.md` §10).
//!
//! The sweep engine answers "solve this grid once"; a live market asks
//! "the market moved a little — what changed?". [`LiveEngine`] holds a
//! retained [`OutcomeCache`] keyed exactly like the sweep's solve cache
//! ([`crate::cache::solve_key`] over content fingerprints), and each
//! [`LiveEngine::resolve`] walks the same deterministic cell axis as a
//! sweep ([`crate::dag::cell_axis`]: whole market first, then activity
//! cohorts, methods inner). Because a delta batch leaves the content
//! fingerprint of every untouched cohort unchanged *by construction*
//! (cohort membership is a pure function of row activity, and untouched
//! rows read the shared arena), only the cells a batch actually
//! invalidates miss the cache and re-solve — and a miss solves the exact
//! sub-market a cold engine would, so the resulting report is
//! **bit-identical** to a from-scratch resolve ([`LiveReport::canonical`]
//! pins this in the churn parity suites).

use crate::cache::{self, CacheStats, OutcomeCache};
use crate::dag::{cell_axis, Cohort};
use crate::{activity_labels, spec};
use revmax_core::algorithms;
use revmax_core::config::Outcome;
use revmax_core::market::Market;
use revmax_core::prelude::Objective;
use std::fmt::Write as _;
use std::sync::Arc;

/// One solve cell of a live resolve.
#[derive(Debug, Clone)]
pub struct LiveCell {
    pub method: String,
    pub cohort: Cohort,
    /// The pricing objective the cell's market carries — surfaced so a
    /// serving diagnostic can tell a robust (CVaR/quantile) menu from a
    /// mean-revenue one at a glance.
    pub objective: Objective,
    pub n_users: usize,
    pub n_items: usize,
    /// Content fingerprint of the cell's (sub-)market.
    pub fingerprint: u64,
    pub revenue: f64,
    pub gain: f64,
    /// Kupfer bundle-vs-separate diagnostic of the cell's sub-market.
    pub kupfer: f64,
    /// True when the retained cache already held this solve.
    pub cached: bool,
    /// The full solved outcome (shared with the cache).
    pub outcome: Arc<Outcome>,
}

/// The result of one [`LiveEngine::resolve`].
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// One row per cell, in [`cell_axis`] order.
    pub cells: Vec<LiveCell>,
    /// Indices (into `cells`) whose solve key changed since the previous
    /// resolve — the cells the last delta batch invalidated. Every index
    /// on the first resolve.
    pub invalidated: Vec<usize>,
    /// Cache hits/misses of this resolve only.
    pub stats: CacheStats,
}

impl LiveReport {
    /// Bit-exact serialization of every cell (fingerprints, diagnostics,
    /// full configuration; no wall clock, no cache placement): an
    /// incremental resolve and a cold resolve of the same market must
    /// render identically.
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        writeln!(s, "cells:{}", self.cells.len()).unwrap();
        for c in &self.cells {
            writeln!(
                s,
                "{}|live|{}|{}|{}x{}|fp:{:016x}|bvs:{:016x}|{}",
                c.method,
                c.objective.id_fragment(),
                c.cohort,
                c.n_users,
                c.n_items,
                c.fingerprint,
                c.kupfer.to_bits(),
                crate::report::canon_outcome(&c.outcome),
            )
            .unwrap();
        }
        s
    }

    /// Total revenue across the whole-market cells of one method (the
    /// serve layer's headline number).
    pub fn whole_revenue(&self, method: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.cohort == Cohort::Whole && c.method == method)
            .map(|c| c.revenue)
    }

    /// The primary whole-market cell — first method, whole cohort: the
    /// cell whose winning configuration the serving daemon compiles and
    /// hot-swaps after every churn batch (`DESIGN.md` §11). `None` only
    /// for an empty report.
    pub fn whole_cell(&self) -> Option<&LiveCell> {
        self.cells.iter().find(|c| c.cohort == Cohort::Whole)
    }
}

/// A retained incremental solver: construct once, [`LiveEngine::resolve`]
/// after every churn batch.
#[derive(Debug)]
pub struct LiveEngine {
    /// Canonical (registry-spelled) method names.
    methods: Vec<String>,
    /// Activity-cohort count (`0` = whole market only).
    cohorts: usize,
    cache: OutcomeCache,
    /// Kupfer diagnostics by sub-market content fingerprint — like the
    /// solve cache, untouched cohorts reuse theirs across churn batches.
    kupfer_memo: std::collections::HashMap<u64, f64>,
    /// Solve keys of the previous resolve, in cell order.
    prev_keys: Vec<u64>,
    /// Sub-market fingerprints of the previous resolve.
    prev_fps: Vec<u64>,
}

impl LiveEngine {
    /// Build an engine for the given methods (any registry spelling) and
    /// cohort count.
    pub fn new(methods: &[&str], cohorts: usize) -> Result<Self, String> {
        if methods.is_empty() {
            return Err("at least one method required".into());
        }
        let methods =
            methods.iter().map(|m| spec::resolve_method(m)).collect::<Result<Vec<_>, _>>()?;
        Ok(LiveEngine {
            methods,
            cohorts,
            cache: OutcomeCache::new(),
            kupfer_memo: std::collections::HashMap::new(),
            prev_keys: Vec::new(),
            prev_fps: Vec::new(),
        })
    }

    /// Canonical (registry-spelled) method names this engine solves, in
    /// cell-axis order.
    pub fn methods(&self) -> &[String] {
        &self.methods
    }

    /// Activity-cohort count (`0` = whole market only).
    pub fn cohorts(&self) -> usize {
        self.cohorts
    }

    /// Cumulative cache statistics across every resolve so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// Solved outcomes currently retained.
    pub fn cached_solves(&self) -> usize {
        self.cache.len()
    }

    /// Drop retained outcomes and diagnostics that the most recent resolve
    /// did not use (stale fingerprints from superseded churn states).
    pub fn prune(&mut self) {
        self.cache.retain_keys(&self.prev_keys);
        let keep_set: std::collections::HashSet<u64> = self.prev_fps.iter().copied().collect();
        // audit: allow(unordered-iter) pure membership predicate — visit order is unobservable
        self.kupfer_memo.retain(|fp, _| keep_set.contains(fp));
    }

    /// Solve every cell of `market` (whole market plus activity cohorts,
    /// every method), reusing retained outcomes wherever the cell's
    /// content fingerprint is unchanged. Deterministic: cells are probed
    /// and solved in [`cell_axis`] order.
    pub fn resolve(&mut self, market: &Market) -> Result<LiveReport, String> {
        if self.cohorts >= 1 && market.n_users() < self.cohorts {
            return Err(format!(
                "cannot split {} consumers into {} cohorts",
                market.n_users(),
                self.cohorts
            ));
        }
        let views = if self.cohorts >= 1 {
            market.partition_by(&activity_labels(market, self.cohorts))
        } else {
            Vec::new()
        };
        let before = self.cache.stats;
        let mut cells = Vec::new();
        let mut keys = Vec::new();
        let mut fps = Vec::new();
        for (cohort, method) in cell_axis(self.cohorts, &self.methods) {
            let m: &Market = match cohort {
                Cohort::Whole => market,
                Cohort::Seg(k) => &views[k as usize],
            };
            let fp = m.fingerprint();
            // Per-sub-market diagnostic, memoized by content fingerprint
            // (shared by the method axis, reused across churn batches).
            let kupfer = match self.kupfer_memo.get(&fp) {
                Some(&k) => k,
                None => {
                    let k = revmax_core::metrics::kupfer_ratio(m);
                    self.kupfer_memo.insert(fp, k);
                    k
                }
            };
            let key = cache::solve_key(fp, &method);
            let (outcome, cached) = match self.cache.get(key) {
                Some(o) => (o, true),
                None => {
                    let configurator =
                        algorithms::by_name(&method).expect("methods resolved at construction");
                    let o = Arc::new(configurator.run(m));
                    self.cache.insert(key, Arc::clone(&o));
                    (o, false)
                }
            };
            cells.push(LiveCell {
                method,
                cohort,
                objective: m.params().objective,
                n_users: m.n_users(),
                n_items: m.n_items(),
                fingerprint: fp,
                revenue: outcome.revenue,
                gain: outcome.gain,
                kupfer,
                cached,
                outcome,
            });
            keys.push(key);
            fps.push(fp);
        }
        let invalidated: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|&(i, &k)| self.prev_keys.get(i) != Some(&k))
            .map(|(i, _)| i)
            .collect();
        self.prev_keys = keys;
        self.prev_fps = fps;
        let after = self.cache.stats;
        Ok(LiveReport {
            cells,
            invalidated,
            stats: CacheStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{market_from_data, ScaleSpec};
    use revmax_core::marketlog::{Event, MarketLog};

    fn tiny_market() -> Market {
        market_from_data(&ScaleSpec::Tiny.config().generate(2015), 0.05)
    }

    #[test]
    fn first_resolve_misses_everything_and_marks_all_invalidated() {
        let mut eng = LiveEngine::new(&["components", "pure_greedy"], 2).unwrap();
        let report = eng.resolve(&tiny_market()).unwrap();
        assert_eq!(report.cells.len(), 2 * 3); // methods × (whole + 2 cohorts)
        assert_eq!(report.stats.misses, 6);
        assert_eq!(report.stats.hits, 0);
        assert_eq!(report.invalidated.len(), 6);
        assert!(report.cells.iter().all(|c| !c.cached && c.revenue > 0.0));
        // Diagnostics are per-sub-market: both methods of one cohort agree.
        assert_eq!(report.cells[0].kupfer.to_bits(), report.cells[1].kupfer.to_bits());
    }

    #[test]
    fn unchanged_market_is_all_hits() {
        let market = tiny_market();
        let mut eng = LiveEngine::new(&["components"], 2).unwrap();
        eng.resolve(&market).unwrap();
        let again = eng.resolve(&market).unwrap();
        assert_eq!(again.stats.hits, 3);
        assert_eq!(again.stats.misses, 0);
        assert!(again.invalidated.is_empty());
    }

    #[test]
    fn churn_invalidates_only_touched_cohorts_and_matches_cold() {
        let market = tiny_market();
        let mut eng = LiveEngine::new(&["components", "pure_greedy"], 2).unwrap();
        eng.resolve(&market).unwrap();

        // Upsert one existing cell's value: exactly one user's row moves.
        let mut log = MarketLog::new(market);
        let (user, item, old) = {
            let bw = log.base().wtp();
            let row = bw.row(0);
            (0u32, row.ids[0], row.values[0])
        };
        log.apply(Event::UpsertWtp { user, item, wtp: old * 1.5 }).unwrap();
        let churned = log.snapshot();

        let inc = eng.resolve(&churned).unwrap();
        // Whole market always invalidates; exactly one cohort holds the
        // touched user, so of 3 sub-markets × 2 methods, 4 cells miss.
        assert_eq!(inc.stats.misses, 4, "invalidated: {:?}", inc.invalidated);
        assert_eq!(inc.stats.hits, 2);
        assert_eq!(inc.invalidated.len(), 4);

        // Bit-identical to a cold engine on the same churned market.
        let mut cold_eng = LiveEngine::new(&["components", "pure_greedy"], 2).unwrap();
        let cold = cold_eng.resolve(&churned).unwrap();
        assert_eq!(inc.canonical(), cold.canonical());
    }

    #[test]
    fn prune_drops_stale_outcomes() {
        let market = tiny_market();
        let mut eng = LiveEngine::new(&["components"], 0).unwrap();
        eng.resolve(&market).unwrap();
        let mut log = MarketLog::new(market);
        let item = log.base().wtp().row(0).ids[0];
        log.apply(Event::UpsertWtp { user: 0, item, wtp: 123.0 }).unwrap();
        eng.resolve(&log.snapshot()).unwrap();
        assert_eq!(eng.cached_solves(), 2);
        eng.prune();
        assert_eq!(eng.cached_solves(), 1);
    }

    #[test]
    fn unknown_method_is_an_error() {
        assert!(LiveEngine::new(&["not_a_method"], 0).is_err());
        assert!(LiveEngine::new(&[], 0).is_err());
    }

    #[test]
    fn whole_revenue_finds_the_headline_cell() {
        let mut eng = LiveEngine::new(&["components"], 1).unwrap();
        assert_eq!(eng.methods(), &["Components".to_string()]);
        assert_eq!(eng.cohorts(), 1);
        let report = eng.resolve(&tiny_market()).unwrap();
        assert!(report.cells.iter().all(|c| c.objective == Objective::Mean));
        assert_eq!(report.whole_revenue("Components"), Some(report.cells[0].revenue));
        assert_eq!(report.whole_revenue("nope"), None);
        let whole = report.whole_cell().unwrap();
        assert_eq!(whole.cohort, Cohort::Whole);
        assert_eq!(whole.method, "Components");
        assert_eq!(whole.revenue, report.cells[0].revenue);
    }
}
