//! The fingerprint-keyed solve cache.
//!
//! A solve cell's cache key combines the market's content fingerprint
//! ([`revmax_core::market::Market::fingerprint`] — WTP content including
//! any view restriction, resolved solve-relevant params, price mode) with
//! the configurator's registry name. Two cells with equal keys are
//! guaranteed bit-identical solves, so the engine runs the first and
//! reuses its outcome for the rest.
//!
//! Determinism of the **counters** (not just the results): the cache is
//! probed in cell order *before* any solve runs, so which cell is the
//! miss and which cells are hits is a pure function of the spec — never
//! of thread scheduling. The executor then solves only the misses, in
//! parallel, and fans the outcomes back out.

use revmax_core::config::Outcome;
use revmax_core::fingerprint::{combine, fingerprint_str};
use std::collections::HashMap;
use std::sync::Arc;

/// Build the cache key for (market fingerprint, configurator name).
pub fn solve_key(market_fingerprint: u64, method: &str) -> u64 {
    combine(market_fingerprint, fingerprint_str(method))
}

/// Hit/miss counters, surfaced in the sweep report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: usize,
    pub misses: usize,
}

impl CacheStats {
    /// Hits over total lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Result of probing the cache for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// First sighting of this key; the caller owns solving it. The key is
    /// now bound to the unique-solve slot the caller supplied.
    Miss,
    /// Key already owned by this unique-solve slot.
    Hit(usize),
}

/// Deterministic dedup map from solve keys to unique-solve slots.
#[derive(Debug)]
pub struct SolveCache {
    enabled: bool,
    map: HashMap<u64, usize>,
    pub stats: CacheStats,
}

impl SolveCache {
    /// A cache; `enabled = false` degrades to counting every probe a miss
    /// (each cell solves independently — the cold-sweep reference).
    pub fn new(enabled: bool) -> Self {
        SolveCache { enabled, map: HashMap::new(), stats: CacheStats::default() }
    }

    /// Probe `key`; on a miss, bind it to `next_unique` (the slot the
    /// caller will place the solve result in).
    pub fn probe(&mut self, key: u64, next_unique: usize) -> Probe {
        if self.enabled {
            if let Some(&slot) = self.map.get(&key) {
                self.stats.hits += 1;
                return Probe::Hit(slot);
            }
            self.map.insert(key, next_unique);
        }
        self.stats.misses += 1;
        Probe::Miss
    }
}

/// A **retained** solve-outcome cache keyed by [`solve_key`] — the live
/// engine's memory across churn batches. [`SolveCache`] dedups within one
/// sweep and is dropped with it; this cache keeps the solved outcomes, so
/// after a delta batch only the cells whose (sub-)market content
/// fingerprint actually changed miss and re-solve. That is the
/// cache-invalidation invariant of `DESIGN.md` §10: content fingerprints
/// of untouched cohorts are unchanged by construction, so their cells hit.
#[derive(Debug, Default)]
pub struct OutcomeCache {
    map: HashMap<u64, Arc<Outcome>>,
    pub stats: CacheStats,
}

impl OutcomeCache {
    pub fn new() -> Self {
        OutcomeCache::default()
    }

    /// Look up a solved outcome; counts a hit or miss.
    pub fn get(&mut self, key: u64) -> Option<Arc<Outcome>> {
        match self.map.get(&key) {
            Some(o) => {
                self.stats.hits += 1;
                Some(Arc::clone(o))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Store the outcome a miss solved.
    pub fn insert(&mut self, key: u64, outcome: Arc<Outcome>) {
        self.map.insert(key, outcome);
    }

    /// Stored outcomes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop every entry whose key is not in `keep` (the keys of the
    /// latest resolve) — bounds memory across long churn histories where
    /// stale fingerprints can never hit again.
    pub fn retain_keys(&mut self, keep: &[u64]) {
        let keep_set: std::collections::HashSet<u64> = keep.iter().copied().collect();
        // audit: allow(unordered-iter) pure membership predicate — visit order is unobservable
        self.map.retain(|k, _| keep_set.contains(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_keys_hit() {
        let mut c = SolveCache::new(true);
        assert_eq!(c.probe(42, 0), Probe::Miss);
        assert_eq!(c.probe(42, 1), Probe::Hit(0));
        assert_eq!(c.probe(43, 1), Probe::Miss);
        assert_eq!(c.probe(42, 2), Probe::Hit(0));
        assert_eq!(c.stats, CacheStats { hits: 2, misses: 2 });
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_misses_everything() {
        let mut c = SolveCache::new(false);
        assert_eq!(c.probe(42, 0), Probe::Miss);
        assert_eq!(c.probe(42, 1), Probe::Miss);
        assert_eq!(c.stats, CacheStats { hits: 0, misses: 2 });
        assert_eq!(c.stats.hit_rate(), 0.0);
    }

    #[test]
    fn key_separates_method_and_market() {
        let a = solve_key(1, "Components");
        assert_ne!(a, solve_key(1, "Pure Greedy"));
        assert_ne!(a, solve_key(2, "Components"));
        assert_eq!(a, solve_key(1, "Components"));
    }
}
