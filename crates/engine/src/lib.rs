//! # revmax-engine — the sharded multi-market sweep engine
//!
//! PR 3's zero-copy [`revmax_core::market::MarketView`] partitioning and
//! [`revmax_core::algorithms::registry`] give per-cohort solves; this
//! crate orchestrates them at fleet scale (`DESIGN.md` §8). A
//! [`SweepSpec`] — a grid over configurators, market partitions, θ
//! values, scales, and seeds — expands into a job
//! DAG ([`dag::JobDag`]: dataset → market → partition → solve), and the
//! jobs execute on [`revmax_par`] under the existing determinism
//! contract: **results are assembled in job-index order and are
//! bit-identical regardless of the thread count** (`DESIGN.md` §6,
//! enforced end to end by `tests/engine_determinism.rs`).
//!
//! Repeated cells across sweep axes are solved once: every solve cell is
//! keyed by a content fingerprint of its sub-market and configurator
//! ([`cache::solve_key`] over [`revmax_core::market::Market::fingerprint`])
//! and deduplicated through the [`cache::SolveCache`] *before* execution,
//! so the hit/miss counters in the [`report::SweepReport`] are a pure
//! function of the spec, never of scheduling.
//!
//! ```no_run
//! use revmax_engine::{run_sweep, SweepSpec};
//!
//! let mut spec = SweepSpec::default();
//! spec.apply("thetas", "0,0.05").unwrap();
//! spec.apply("seeds", "2015,2015").unwrap(); // repeat → cache hits
//! spec.apply("cohorts", "3").unwrap();
//! let report = run_sweep(&spec).unwrap();
//! println!("{}", report.render_table());
//! assert!(report.hit_rate() > 0.0);
//! ```

pub mod cache;
pub mod dag;
pub mod live;
pub mod report;
pub mod spec;

pub use cache::{CacheStats, OutcomeCache, SolveCache};
pub use dag::{Cohort, DagSummary, JobDag};
pub use live::{LiveCell, LiveEngine, LiveReport};
pub use report::{BenchEntry, CellResult, SolveTiming, SweepReport};
pub use spec::{DistKind, ScaleSpec, SweepSpec, WtpDist};

use revmax_core::algorithms;
use revmax_core::market::{Market, MarketView};
use revmax_core::prelude::{Objective, Params, Threads, WtpMatrix};
use revmax_par::par_index_map;
use std::time::{Duration, Instant};

/// Hard cap on timing repetitions per unique solve when
/// [`SweepSpec::budget_ms`] keeps extending a microsecond-scale solve.
pub const MAX_TIMED_REPS: usize = 20_000;

/// Balanced activity cohort labels: users ranked by rating count (ties by
/// id) and split into `k` contiguous rank groups, so every label
/// `0..k` is populated whenever `n_users ≥ k`. Pure function of the
/// market content — the partition is part of the sweep's deterministic
/// surface.
pub fn activity_labels(market: &Market, k: usize) -> Vec<u32> {
    let n = market.n_users();
    assert!(k >= 1 && n >= k, "cannot split {n} consumers into {k} cohorts");
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&u| (market.wtp().row(u).len(), u));
    let mut labels = vec![0u32; n];
    for (rank, &u) in order.iter().enumerate() {
        labels[u as usize] = (rank * k / n) as u32;
    }
    labels
}

/// Build the engine's canonical market over a ratings dataset: paper
/// defaults with the given θ, inner solves pinned to 1 thread
/// (`DESIGN.md` §8's no-nested-fan-out rule), rating-mapped WTPs, mean
/// objective. Delegates to [`market_from_cell`] — the **single**
/// construction recipe shared by the sweep executor's Market stage,
/// [`rebuild_cell_market`], and the serving benches/tests; the §8.2
/// fingerprint check in `rebuild_cell_market` relies on every producer
/// and consumer of a cell market using exactly this.
pub fn market_from_data(data: &revmax_dataset::RatingsData, theta: f64) -> Market {
    market_from_cell(data, 0, theta, WtpDist::Rating, Objective::Mean)
}

/// Build one sweep cell's market: `data`'s rating structure with WTPs
/// from `dist` (the λ-linear rating map, or a seeded heavy-tailed redraw —
/// `seed` is the cell's dataset seed, so the magnitudes are as
/// reproducible as the dataset itself and ignored for [`WtpDist::Rating`]),
/// θ and the pricing `objective` in the params, inner solves pinned to 1
/// thread. For `(Rating, Mean)` this is bit-identical to what
/// [`market_from_data`] always built.
pub fn market_from_cell(
    data: &revmax_dataset::RatingsData,
    seed: u64,
    theta: f64,
    dist: WtpDist,
    objective: Objective,
) -> Market {
    let params = Params::default()
        .with_theta(theta)
        .with_threads(Threads::Fixed(1))
        .with_objective(objective);
    let wtp = match dist.tail_dist() {
        None => WtpMatrix::from_ratings(
            data.n_users(),
            data.n_items(),
            data.triples(),
            data.prices(),
            params.lambda,
        ),
        Some(td) => WtpMatrix::from_triples(
            data.n_users(),
            data.n_items(),
            revmax_dataset::heavy_tail_wtps(data, td, seed),
            Some(data.prices().to_vec()),
        ),
    };
    Market::new(wtp, params)
}

/// Rebuild the exact (sub-)market a sweep cell was solved on: regenerate
/// the cell's dataset from its `(scale, seed)`, apply its θ, and — for a
/// cohort cell — re-partition with [`activity_labels`] under the spec's
/// `cohorts` knob. The rebuilt market's content fingerprint is verified
/// against the one recorded in the cell, so a drifted spec (or a report
/// from a different generator version) fails loudly instead of serving
/// the wrong consumers. This is the market half of the serve layer's
/// "sweep cell → `MenuIndex` in one call" wiring (`DESIGN.md` §9).
pub fn rebuild_cell_market(spec: &SweepSpec, cell: &CellResult) -> Result<Market, String> {
    let data = cell.scale.config().generate(cell.seed);
    let market = market_from_cell(&data, cell.seed, cell.theta, cell.dist, cell.objective);
    let market = match cell.cohort {
        Cohort::Whole => market,
        Cohort::Seg(k) => {
            if spec.cohorts < 1 || market.n_users() < spec.cohorts {
                return Err(format!(
                    "cell is cohort c{k} but the spec partitions {} consumers into {} cohorts",
                    market.n_users(),
                    spec.cohorts
                ));
            }
            let views = market.partition_by(&activity_labels(&market, spec.cohorts));
            views
                .get(k as usize)
                .ok_or_else(|| {
                    format!("cohort c{k} out of range for a {}-cohort spec", spec.cohorts)
                })?
                .market()
                .clone()
        }
    };
    if market.fingerprint() != cell.fingerprint {
        return Err(format!(
            "rebuilt market fingerprint {:016x} does not match the cell's {:016x} \
             (spec/report mismatch?)",
            market.fingerprint(),
            cell.fingerprint
        ));
    }
    Ok(market)
}

/// Run a sweep: expand the DAG, execute its stages on `revmax-par`, and
/// assemble the report in cell order. See the crate docs for the
/// determinism and caching guarantees.
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepReport, String> {
    spec.validate()?;
    // Canonicalize method names up front: a directly-constructed spec may
    // carry aliases (`pure_matching`), and everything downstream — the
    // registry lookup, the cache key, the report rows — must see one
    // spelling per method.
    let spec = {
        let mut s = spec.clone();
        for m in &mut s.methods {
            *m = spec::resolve_method(m)?;
        }
        s
    };
    let spec = &spec;
    let threads = spec.threads.get();
    let t0 = Instant::now(); // audit: allow(wall-clock) report wall_time is a stat, never a result input
    let dag = JobDag::expand(spec);

    // Stage 1 — datasets: one generator run per distinct (scale, seed).
    let dataset_params: Vec<(ScaleSpec, u64)> = dag
        .datasets
        .iter()
        .map(|&j| match dag.jobs[j].kind {
            dag::JobKind::Dataset { scale, seed } => (scale, seed),
            _ => unreachable!("dataset stage holds dataset jobs"),
        })
        .collect();
    let datasets = par_index_map(threads, dataset_params.len(), |k| {
        let (scale, seed) = dataset_params[k];
        scale.config().generate(seed)
    });

    // Stage 2 — markets: WTP matrix + θ/objective-bearing params per
    // distinct (dataset, θ, dist, objective). Inner solves are pinned to 1
    // thread: the engine owns the fan-out (DESIGN.md §8's
    // no-nested-fan-out rule).
    let market_params: Vec<(usize, f64, WtpDist, Objective)> = dag
        .markets
        .iter()
        .map(|&j| match dag.jobs[j].kind {
            dag::JobKind::Market { dataset, theta, dist, objective } => {
                (dataset, theta, dist, objective)
            }
            _ => unreachable!("market stage holds market jobs"),
        })
        .collect();
    let markets: Vec<Market> = par_index_map(threads, market_params.len(), |k| {
        let (ds, theta, dist, objective) = market_params[k];
        market_from_cell(&datasets[ds], dataset_params[ds].1, theta, dist, objective)
    });

    if spec.cohorts >= 1 {
        if let Some(m) = markets.iter().find(|m| m.n_users() < spec.cohorts) {
            return Err(format!(
                "cannot split {} consumers into {} cohorts (scale too small)",
                m.n_users(),
                spec.cohorts
            ));
        }
    }

    // Stage 3 — partitions + fingerprints + diagnostics: per market, the
    // cohort views, the content fingerprint of every solvable sub-market,
    // and the Kupfer bundle-vs-separate ratio (a per-sub-market structural
    // diagnostic, independent of the method axis). Computing fingerprints
    // here also materializes the views' lazy columns once, outside the
    // timed solves.
    struct Partitioned {
        views: Vec<MarketView>,
        whole_fp: u64,
        view_fps: Vec<u64>,
        whole_kupfer: f64,
        view_kupfers: Vec<f64>,
    }
    let partitioned: Vec<Partitioned> = par_index_map(threads, markets.len(), |k| {
        let market = &markets[k];
        let views = if spec.cohorts >= 1 {
            market.partition_by(&activity_labels(market, spec.cohorts))
        } else {
            Vec::new()
        };
        Partitioned {
            whole_fp: market.fingerprint(),
            view_fps: views.iter().map(|v| v.fingerprint()).collect(),
            whole_kupfer: revmax_core::metrics::kupfer_ratio(market),
            view_kupfers: views.iter().map(|v| revmax_core::metrics::kupfer_ratio(v)).collect(),
            views,
        }
    });

    // Stage 4 — deterministic cache pass over the cells, in cell order:
    // assign each cell either a fresh unique-solve slot or the slot of an
    // earlier cell with the same (sub-market, method) fingerprint key.
    let mut solve_cache = SolveCache::new(spec.cache);
    let mut assignment: Vec<(usize, bool)> = Vec::with_capacity(dag.cells.len()); // (slot, cached)
    let mut uniques: Vec<usize> = Vec::new(); // slot → cell index
    for (idx, cell) in dag.cells.iter().enumerate() {
        let p = &partitioned[cell.market];
        let fp = match cell.cohort {
            Cohort::Whole => p.whole_fp,
            Cohort::Seg(k) => p.view_fps[k as usize],
        };
        match solve_cache.probe(cache::solve_key(fp, &cell.method), uniques.len()) {
            cache::Probe::Hit(slot) => assignment.push((slot, true)),
            cache::Probe::Miss => {
                assignment.push((uniques.len(), false));
                uniques.push(idx);
            }
        }
    }

    // Stage 5 — the unique solves, in parallel, results in slot order.
    struct Solved {
        outcome: revmax_core::config::Outcome,
        timing: SolveTiming,
    }
    let solved: Vec<Solved> = par_index_map(threads, uniques.len(), |slot| {
        let cell = &dag.cells[uniques[slot]];
        let p = &partitioned[cell.market];
        let market: &Market = match cell.cohort {
            Cohort::Whole => &markets[cell.market],
            Cohort::Seg(k) => &p.views[k as usize],
        };
        let configurator = algorithms::by_name(&cell.method).expect("validated method name");
        // At least `repeat` timed repetitions; with a measurement budget,
        // short solves keep repeating until the budget accumulates (the
        // outcome is bit-identical every repetition — only the wall-clock
        // statistics improve).
        let budget = Duration::from_millis(spec.budget_ms);
        let mut outcome = None;
        let mut durations = Vec::with_capacity(spec.repeat);
        let mut spent = Duration::ZERO;
        while durations.len() < spec.repeat || (spent < budget && durations.len() < MAX_TIMED_REPS)
        {
            let t = Instant::now(); // audit: allow(wall-clock) repeat budget varies timing stats only; every repeat yields the identical outcome
            outcome = Some(configurator.run(market));
            let d = t.elapsed();
            spent += d;
            durations.push(d);
        }
        Solved {
            outcome: outcome.expect("repeat >= 1"),
            timing: SolveTiming::from_durations(&durations),
        }
    });

    // Stage 6 — assemble the report in cell order. The canonical
    // serialization is computed once per unique solve (a full bundle-tree
    // walk); cached cells clone the string.
    let canons: Vec<String> = solved.iter().map(|s| report::canon_outcome(&s.outcome)).collect();
    let cells: Vec<CellResult> = dag
        .cells
        .iter()
        .zip(&assignment)
        .map(|(cell, &(slot, cached))| {
            let p = &partitioned[cell.market];
            let (fp, kupfer, n_users, n_items) = match cell.cohort {
                Cohort::Whole => {
                    let m = &markets[cell.market];
                    (p.whole_fp, p.whole_kupfer, m.n_users(), m.n_items())
                }
                Cohort::Seg(k) => {
                    let v = &p.views[k as usize];
                    (p.view_fps[k as usize], p.view_kupfers[k as usize], v.n_users(), v.n_items())
                }
            };
            let s = &solved[slot];
            CellResult {
                method: cell.method.clone(),
                scale: cell.scale,
                theta: cell.theta,
                seed: cell.seed,
                dist: cell.dist,
                objective: cell.objective,
                cohort: cell.cohort,
                n_users,
                n_items,
                fingerprint: fp,
                revenue: s.outcome.revenue,
                components_revenue: s.outcome.components_revenue,
                coverage: s.outcome.coverage,
                gain: s.outcome.gain,
                kupfer,
                n_bundles: s.outcome.config.n_bundles(),
                config: s.outcome.config.clone(),
                config_canon: canons[slot].clone(),
                cached,
                timing: if cached { None } else { Some(s.timing) },
            }
        })
        .collect();

    Ok(SweepReport {
        cells,
        cache: solve_cache.stats,
        dag: dag.summary(),
        threads,
        wall: t0.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::default();
        spec.apply("methods", "components,pure_greedy").unwrap();
        spec.apply("scales", "tiny").unwrap();
        spec.apply("threads", "2").unwrap();
        spec
    }

    #[test]
    fn whole_market_sweep_runs() {
        let report = run_sweep(&tiny_spec()).unwrap();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cache.misses, 2);
        assert_eq!(report.cache.hits, 0);
        assert!(report.cells.iter().all(|c| c.revenue > 0.0 && !c.cached));
        assert!(report.cells.iter().all(|c| c.timing.is_some()));
    }

    #[test]
    fn repeated_seed_hits_the_cache() {
        let mut spec = tiny_spec();
        spec.apply("seeds", "2015,2015").unwrap();
        let report = run_sweep(&spec).unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.cache.hits, 2, "the duplicated seed's cells must hit");
        assert_eq!(report.cache.misses, 2);
        assert!(report.hit_rate() > 0.0);
        // The DAG collapsed the upstream jobs too.
        assert_eq!(report.dag.datasets, 1);
        assert_eq!(report.dag.markets, 1);
        // Cached cells mirror their source bit for bit.
        assert_eq!(report.cells[0].config_canon, report.cells[2].config_canon);
        assert!(report.cells[2].cached && report.cells[2].timing.is_none());
    }

    #[test]
    fn cache_off_solves_every_cell() {
        let mut spec = tiny_spec();
        spec.apply("seeds", "2015,2015").unwrap();
        spec.apply("cache", "off").unwrap();
        let report = run_sweep(&spec).unwrap();
        assert_eq!(report.cache.hits, 0);
        assert_eq!(report.cache.misses, 4);
        assert!(report.cells.iter().all(|c| !c.cached));
    }

    #[test]
    fn cohort_cells_sum_to_whole_market_users() {
        let mut spec = tiny_spec();
        spec.apply("cohorts", "3").unwrap();
        let report = run_sweep(&spec).unwrap();
        assert_eq!(report.cells.len(), 2 * 4);
        let whole_users = report.cells[0].n_users;
        let cohort_users: usize = report
            .cells
            .iter()
            .filter(|c| c.method == "Components" && c.cohort != Cohort::Whole)
            .map(|c| c.n_users)
            .sum();
        assert_eq!(cohort_users, whole_users);
        // Distinct sub-markets fingerprint differently.
        let mut fps: Vec<u64> = report
            .cells
            .iter()
            .filter(|c| c.method == "Components")
            .map(|c| c.fingerprint)
            .collect();
        fps.dedup();
        assert_eq!(fps.len(), 4);
    }

    #[test]
    fn activity_labels_are_balanced_and_deterministic() {
        let data = ScaleSpec::Tiny.config().generate(3);
        let params = Params::default();
        let wtp = WtpMatrix::from_ratings(
            data.n_users(),
            data.n_items(),
            data.triples(),
            data.prices(),
            params.lambda,
        );
        let market = Market::new(wtp, params);
        let labels = activity_labels(&market, 3);
        assert_eq!(labels, activity_labels(&market, 3));
        let mut counts = [0usize; 3];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "every cohort populated: {counts:?}");
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
    }

    #[test]
    fn alias_method_names_are_canonicalized() {
        // A directly-constructed spec may carry aliases; the sweep must
        // resolve them (same cache keys, same report names) rather than
        // panic at the registry lookup.
        let mut spec = tiny_spec();
        spec.methods = vec!["pure_matching".into(), "Pure Matching".into()];
        let report = run_sweep(&spec).unwrap();
        assert!(report.cells.iter().all(|c| c.method == "Pure Matching"));
        assert_eq!(report.cache.hits, 1, "both spellings must share one cache key");
    }

    #[test]
    fn too_many_cohorts_is_an_error() {
        let mut spec = tiny_spec();
        spec.apply("cohorts", "10000").unwrap();
        let err = run_sweep(&spec).unwrap_err();
        assert!(err.contains("cohorts"), "{err}");
    }

    #[test]
    fn cells_carry_their_winning_config() {
        let mut spec = tiny_spec();
        spec.apply("seeds", "2015,2015").unwrap();
        let report = run_sweep(&spec).unwrap();
        for c in &report.cells {
            c.config.validate(c.n_items);
            assert!(!c.config.roots.is_empty());
        }
        // A cached cell's config is a faithful clone of its source's.
        assert_eq!(report.cells[2].config, report.cells[0].config);
    }

    #[test]
    fn rebuild_cell_market_round_trips_whole_and_cohort_cells() {
        let mut spec = tiny_spec();
        spec.apply("cohorts", "2").unwrap();
        let report = run_sweep(&spec).unwrap();
        for cell in &report.cells {
            let market = rebuild_cell_market(&spec, cell).unwrap();
            assert_eq!(market.fingerprint(), cell.fingerprint);
            assert_eq!(market.n_users(), cell.n_users);
            assert_eq!(market.n_items(), cell.n_items);
        }
    }

    #[test]
    fn rebuild_cell_market_rejects_a_drifted_spec() {
        let mut spec = tiny_spec();
        spec.apply("cohorts", "2").unwrap();
        let report = run_sweep(&spec).unwrap();
        let cohort_cell =
            report.cells.iter().find(|c| c.cohort != Cohort::Whole).expect("cohort cell");
        // Re-partitioning under a different cohort count yields a
        // different sub-market; the fingerprint check must catch it.
        let mut drifted = spec.clone();
        drifted.apply("cohorts", "3").unwrap();
        let err = rebuild_cell_market(&drifted, cohort_cell).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn objective_and_dist_separate_fingerprints_and_cache_keys() {
        // Satellite bugfix: a CVaR solve must never hit a cached mean
        // solve — the objective (and the dataset distribution knobs) are
        // part of the market fingerprint, hence of the solve-cache key.
        let data = ScaleSpec::Tiny.config().generate(5);
        let mean = market_from_cell(&data, 5, 0.0, WtpDist::Rating, Objective::Mean);
        let cvar = market_from_cell(&data, 5, 0.0, WtpDist::Rating, Objective::Cvar(0.9));
        let pareto =
            market_from_cell(&data, 5, 0.0, WtpDist::Pareto { alpha: 2.0 }, Objective::Mean);
        assert_ne!(mean.fingerprint(), cvar.fingerprint());
        assert_ne!(mean.fingerprint(), pareto.fingerprint());
        assert_ne!(cvar.fingerprint(), pareto.fingerprint());
        assert_ne!(
            cache::solve_key(mean.fingerprint(), "Components"),
            cache::solve_key(cvar.fingerprint(), "Components"),
        );
        // And the default construction is the pre-objective one, bit for
        // bit (same fingerprint as the delegating market_from_data).
        assert_eq!(mean.fingerprint(), market_from_data(&data, 0.0).fingerprint());
    }

    #[test]
    fn objective_axis_solves_cells_separately_not_via_cache() {
        let mut spec = tiny_spec();
        spec.apply("objectives", "mean,cvar:0.5").unwrap();
        let report = run_sweep(&spec).unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.cache.hits, 0, "mean and cvar cells must not share solves");
        assert_eq!(report.cache.misses, 4);
        assert_eq!(report.dag.markets, 2);
        // The objective rides the report rows and the bench ids.
        assert!(report.cells.iter().any(|c| c.objective == Objective::Cvar(0.5)));
        let entries = report.bench_entries();
        assert!(entries.iter().any(|e| e.id == "sweep_tiny/theta0/components"));
        assert!(entries.iter().any(|e| e.id == "sweep_tiny/theta0/cvar0.5/components"));
    }

    #[test]
    fn heavy_tail_sweep_runs_and_rebuilds() {
        let mut spec = tiny_spec();
        spec.apply("dists", "rating,pareto,lognormal").unwrap();
        spec.apply("tails", "2").unwrap();
        spec.apply("cohorts", "2").unwrap();
        let report = run_sweep(&spec).unwrap();
        assert_eq!(report.cells.len(), 2 * 3 * 3); // methods x dists x (whole+2)
        assert!(report.cells.iter().all(|c| c.revenue.is_finite() && c.revenue > 0.0));
        // Heavy-tail cells rebuild to the same fingerprint (seeded redraw).
        for cell in report.cells.iter().filter(|c| c.dist != WtpDist::Rating) {
            let market = rebuild_cell_market(&spec, cell).unwrap();
            assert_eq!(market.fingerprint(), cell.fingerprint);
        }
        let entries = report.bench_entries();
        assert!(entries.iter().any(|e| e.id == "sweep_tiny/theta0/pareto2/components"));
        assert!(entries.iter().any(|e| e.id == "sweep_tiny/theta0/lognormal2/components"));
    }

    #[test]
    fn bench_entries_cover_whole_market_cells_only() {
        let mut spec = tiny_spec();
        spec.apply("cohorts", "2").unwrap();
        spec.apply("repeat", "2").unwrap();
        let report = run_sweep(&spec).unwrap();
        let entries = report.bench_entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().any(|e| e.id == "sweep_tiny/theta0/components"));
        assert!(entries.iter().all(|e| e.iters == 2));
    }
}
