//! Heavy-tail WTP draws through the hardened pricing edge paths at 10⁶
//! scale: the PR-5 guarantees (non-finite filtering, `total_cmp` sorting,
//! grid-step guards) must hold when the inputs come from the
//! infinite-variance and infinite-mean regimes the tail generators can
//! reach, under every pricing objective.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revmax_core::objective::Objective;
use revmax_core::pricing::{optimize_with, Candidates, PriceMode, PricingCtx};
use revmax_dataset::TailDist;

#[test]
fn million_heavy_tail_values_price_finitely_under_every_objective() {
    let mut rng = StdRng::seed_from_u64(2015);
    for dist in [
        TailDist::Pareto { alpha: 0.8 }, // infinite mean
        TailDist::Pareto { alpha: 1.7 }, // infinite variance
        TailDist::LogNormal { sigma: 4.0 },
    ] {
        let values: Vec<f64> = (0..1_000_000).map(|_| dist.sample(&mut rng) * 12.99).collect();
        for mode in [PriceMode::Exact, PriceMode::Grid] {
            let ctx = PricingCtx {
                mode,
                ..PricingCtx::from_params(&revmax_core::params::Params::default())
            };
            for objective in [Objective::Mean, Objective::Cvar(0.9), Objective::Quantile(0.5)] {
                let out = optimize_with(&values, &ctx, objective, Candidates::Auto);
                assert!(
                    out.price.is_finite() && out.price >= 0.0,
                    "{dist:?}/{mode:?}/{objective:?}: price {}",
                    out.price
                );
                assert!(
                    out.revenue.is_finite() && out.revenue >= 0.0,
                    "{dist:?}/{mode:?}/{objective:?}: revenue {}",
                    out.revenue
                );
                assert!(out.expected_buyers.is_finite() && out.expected_buyers >= 0.0);
            }
        }
    }
}
