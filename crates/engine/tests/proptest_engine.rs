//! Property suite for the sweep engine's solve cache (`DESIGN.md` §8):
//!
//! 1. A **cached sweep is bit-identical to a cold sweep** of the same
//!    spec — canonical `to_bits` serialization of every cell (revenues,
//!    prices, bundle trees, fingerprints) — across random grids with
//!    deliberately duplicated axis values.
//! 2. **Fingerprints separate solves**: two markets differing in any of
//!    (view restriction, θ, other params, dataset seed) fingerprint
//!    differently, and markets agreeing in all of them fingerprint
//!    equally — the exact invariant that makes a cache hit safe.

use proptest::prelude::*;
use revmax_core::market::Market;
use revmax_core::params::{Params, SizeCap, Threads};
use revmax_core::wtp::WtpMatrix;
use revmax_engine::{run_sweep, SweepSpec};

/// A random sweep spec over the tiny scale: 1–2 methods, θ and seed axes
/// with possible duplicates, 0–2 cohorts.
fn arb_spec() -> impl Strategy<Value = SweepSpec> {
    let method = (0usize..4).prop_map(|k| {
        ["Components", "Pure Matching", "Mixed Greedy", "Pure FreqItemset"][k].to_string()
    });
    (
        proptest::collection::vec(method, 1..=2),
        proptest::collection::vec(0u64..3, 1..=2), // seed pool: repeats likely
        proptest::collection::vec(0i32..=2, 1..=2), // θ in {0, 0.05, 0.10}
        0usize..=2,
    )
        .prop_map(|(methods, seeds, theta_raw, cohorts)| {
            let mut spec = SweepSpec {
                methods,
                seeds,
                thetas: theta_raw.into_iter().map(|t| t as f64 * 0.05).collect(),
                cohorts,
                threads: Threads::Fixed(2),
                ..SweepSpec::default()
            };
            spec.apply("scales", "tiny").unwrap();
            spec
        })
}

/// A small dense market derived from (seed, θ, params knobs, restriction):
/// the fingerprint test bed. All entries positive so any user/item subset
/// change is a content change.
fn market_for(seed: u64, theta: f64, lambda: f64, levels: usize, cap: SizeCap) -> Market {
    let rows: Vec<Vec<f64>> = (0..8u64)
        .map(|u| {
            (0..5u64)
                .map(|i| {
                    let h = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(u * 131 + i * 17)
                        .wrapping_mul(0xD134_2543_DE82_EF95);
                    ((h >> 32) % 1000 + 1) as f64 / 50.0
                })
                .collect()
        })
        .collect();
    let params = Params::default()
        .with_theta(theta)
        .with_lambda(lambda)
        .with_price_levels(levels)
        .with_size_cap(cap);
    Market::new(WtpMatrix::from_rows(rows), params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cached_sweep_bit_identical_to_cold_sweep(spec in arb_spec()) {
        let mut cached = spec.clone();
        cached.cache = true;
        let mut cold = spec;
        cold.cache = false;
        let warm_report = run_sweep(&cached).unwrap();
        let cold_report = run_sweep(&cold).unwrap();
        // Same cells, same bit-exact content; only cache placement and
        // wall clock may differ.
        prop_assert_eq!(warm_report.canonical(), cold_report.canonical());
        prop_assert_eq!(cold_report.cache.hits, 0);
        prop_assert_eq!(cold_report.cache.misses, cold_report.cells.len());
        // Every cell the warm run served from cache has a bit-identical
        // cold twin at the same grid position (canonical() already proves
        // this cell-by-cell; spot-check the revenue bits too).
        for (w, c) in warm_report.cells.iter().zip(&cold_report.cells) {
            prop_assert_eq!(w.revenue.to_bits(), c.revenue.to_bits());
            prop_assert_eq!(w.fingerprint, c.fingerprint);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fingerprints_separate_solve_inputs(
        seed in 0u64..50,
        theta_raw in 0i32..=3,
        lambda_raw in 0i32..=2,
        levels in 1usize..=3,
        capped_raw in 0u32..2,
        drop_user in 0u32..8,
        drop_item in 0u32..5,
    ) {
        let theta = theta_raw as f64 * 0.05;
        let lambda = 1.0 + lambda_raw as f64 * 0.25;
        let levels = levels * 50;
        let capped = capped_raw == 1;
        let cap = if capped { SizeCap::AtMost(3) } else { SizeCap::Unlimited };
        let m = market_for(seed, theta, lambda, levels, cap);
        let fp = m.fingerprint();

        // Identical inputs → identical fingerprint (rebuilt from scratch).
        prop_assert_eq!(fp, market_for(seed, theta, lambda, levels, cap).fingerprint());

        // Different dataset seed → different WTP content → different fp.
        prop_assert_ne!(fp, market_for(seed + 50, theta, lambda, levels, cap).fingerprint());

        // Different θ / λ / T / size cap → different fp.
        prop_assert_ne!(fp, market_for(seed, theta + 0.01, lambda, levels, cap).fingerprint());
        prop_assert_ne!(fp, market_for(seed, theta, lambda + 0.01, levels, cap).fingerprint());
        prop_assert_ne!(fp, market_for(seed, theta, lambda, levels + 1, cap).fingerprint());
        let flipped = if capped { SizeCap::Unlimited } else { SizeCap::AtMost(3) };
        prop_assert_ne!(fp, market_for(seed, theta, lambda, levels, flipped).fingerprint());

        // View restrictions: dropping any user or item changes the fp,
        // different drops differ from each other, and a view equals a
        // from-scratch market over the same content.
        let users: Vec<u32> = (0..8u32).filter(|&u| u != drop_user).collect();
        let items: Vec<u32> = (0..5u32).filter(|&i| i != drop_item).collect();
        let user_view = m.view(None, Some(&users));
        let item_view = m.view(Some(&items), None);
        let both_view = m.view(Some(&items), Some(&users));
        prop_assert_ne!(fp, user_view.fingerprint());
        prop_assert_ne!(fp, item_view.fingerprint());
        prop_assert_ne!(user_view.fingerprint(), item_view.fingerprint());
        prop_assert_ne!(user_view.fingerprint(), both_view.fingerprint());
        let other_users: Vec<u32> = (0..8u32).filter(|&u| u != (drop_user + 1) % 8).collect();
        prop_assert_ne!(
            user_view.fingerprint(),
            m.view(None, Some(&other_users)).fingerprint()
        );
        // The thread knob never splits fingerprints (DESIGN.md §6).
        let threaded = Market::new(
            m.wtp().clone(),
            m.params().with_threads(Threads::Fixed(7)),
        );
        prop_assert_eq!(fp, threaded.fingerprint());
    }
}
