//! Seeded synthetic generator reproducing the paper's published marginals.
//!
//! Pipeline (a bipartite configuration model):
//!
//! 1. Draw user degrees `min_degree + Exp(mean_extra_degree)` (heavy-ish
//!    activity tail) and item degrees proportional to Zipf weights with a
//!    floor of `min_degree`, rebalanced so both sides have equal stubs.
//! 2. Match stubs uniformly at random; duplicate (user, item) pairs are
//!    dropped.
//! 3. Apply the paper's iterative k-core trim (degree ≥ `min_degree`).
//! 4. Assign each item a rating profile drawn from a Dirichlet centred on
//!    the paper's global star histogram (3/5/13/29/49%), then sample each
//!    rating's stars from its item's profile. Per-item heterogeneity is what
//!    makes optimal pricing differ across items.
//! 5. Assign listed prices from the paper's bucket histogram
//!    (~50% < $10, ~45% $10–20, remainder above $20).

use crate::stats::{dirichlet, exponential, zipf_weights, WeightedSampler};
use crate::{kcore, Rating, RatingsData};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for the Amazon-Books-like synthetic dataset.
#[derive(Debug, Clone)]
pub struct AmazonBooksConfig {
    /// Users to generate before trimming.
    pub n_users: usize,
    /// Items to generate before trimming.
    pub n_items: usize,
    /// k-core threshold (the paper uses 10).
    pub min_degree: usize,
    /// Mean of the exponential activity tail above `min_degree`.
    pub mean_extra_degree: f64,
    /// Zipf exponent for item popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Global star histogram for ratings 1..=5 (fractions, sum 1).
    pub rating_histogram: [f64; 5],
    /// Dirichlet concentration: higher = items closer to the global
    /// histogram; lower = more heterogeneous items.
    pub rating_concentration: f64,
    /// Fractions of items per price bucket.
    pub price_bucket_fractions: [f64; 3],
    /// Price ranges (low, high) per bucket, dollars.
    pub price_bucket_ranges: [(f64, f64); 3],
}

impl AmazonBooksConfig {
    /// The paper's scale: targets 4,449 users × 5,028 items × 108,291
    /// ratings after the 10-core trim. Degrees are padded a little so the
    /// post-trim counts land near the targets.
    pub fn paper() -> Self {
        AmazonBooksConfig {
            n_users: 4_550,
            n_items: 5_150,
            min_degree: 10,
            mean_extra_degree: 14.6,
            zipf_exponent: 0.62,
            rating_histogram: [0.03, 0.05, 0.13, 0.29, 0.49],
            rating_concentration: 9.0,
            price_bucket_fractions: [0.51, 0.45, 0.04],
            price_bucket_ranges: [(2.99, 9.99), (10.0, 19.99), (20.0, 34.99)],
        }
    }

    /// A fast, small instance with the same shape, for unit tests and
    /// examples (4-core, a few hundred ratings).
    pub fn small() -> Self {
        AmazonBooksConfig {
            n_users: 120,
            n_items: 60,
            min_degree: 4,
            mean_extra_degree: 5.0,
            zipf_exponent: 0.62,
            ..Self::paper()
        }
    }

    /// A mid-size instance: large enough for the shapes of the paper's
    /// figures to show, small enough for debug-build tests.
    pub fn medium() -> Self {
        AmazonBooksConfig {
            n_users: 900,
            n_items: 500,
            min_degree: 6,
            mean_extra_degree: 9.0,
            ..Self::paper()
        }
    }

    /// Override the number of users (pre-trim).
    pub fn with_users(mut self, n: usize) -> Self {
        self.n_users = n;
        self
    }

    /// Override the number of items (pre-trim).
    pub fn with_items(mut self, n: usize) -> Self {
        self.n_items = n;
        self
    }

    /// Override the rating heterogeneity (Dirichlet concentration).
    pub fn with_concentration(mut self, c: f64) -> Self {
        self.rating_concentration = c;
        self
    }

    /// Generate a dataset. Deterministic in (config, seed).
    pub fn generate(&self, seed: u64) -> RatingsData {
        assert!(self.n_users > 0 && self.n_items > 0, "empty config");
        // The paper's published histogram (3/5/13/29/49%) sums to 99% due to
        // rounding; normalize rather than reject.
        let hist_total: f64 = self.rating_histogram.iter().sum();
        assert!(hist_total > 0.0, "rating histogram must have positive mass");
        let hist: [f64; 5] = std::array::from_fn(|k| self.rating_histogram[k] / hist_total);
        let mut rng = StdRng::seed_from_u64(seed);

        // --- 1. Degree sequences -------------------------------------------------
        let user_deg: Vec<usize> = (0..self.n_users)
            .map(|_| {
                self.min_degree + exponential(&mut rng, self.mean_extra_degree).round() as usize
            })
            .collect();
        let total_stubs: usize = user_deg.iter().sum();
        assert!(
            total_stubs >= self.n_items * self.min_degree,
            "config infeasible: {} user stubs cannot give {} items degree {}",
            total_stubs,
            self.n_items,
            self.min_degree
        );
        let zipf = zipf_weights(self.n_items, self.zipf_exponent);
        let zipf_total: f64 = zipf.iter().sum();
        let mut item_deg: Vec<usize> = zipf
            .iter()
            .map(|w| ((w / zipf_total * total_stubs as f64).round() as usize).max(self.min_degree))
            .collect();
        // Rebalance item stubs to exactly match user stubs.
        let mut diff = item_deg.iter().sum::<usize>() as i64 - total_stubs as i64;
        while diff != 0 {
            let i = rng.random_range(0..self.n_items);
            if diff > 0 {
                if item_deg[i] > self.min_degree {
                    item_deg[i] -= 1;
                    diff -= 1;
                }
            } else {
                item_deg[i] += 1;
                diff += 1;
            }
        }

        // --- 2. Stub matching ----------------------------------------------------
        let mut user_stubs: Vec<u32> = Vec::with_capacity(total_stubs);
        for (u, &d) in user_deg.iter().enumerate() {
            user_stubs.extend(std::iter::repeat_n(u as u32, d));
        }
        let mut item_stubs: Vec<u32> = Vec::with_capacity(total_stubs);
        for (i, &d) in item_deg.iter().enumerate() {
            item_stubs.extend(std::iter::repeat_n(i as u32, d));
        }
        user_stubs.shuffle(&mut rng);
        item_stubs.shuffle(&mut rng);
        let mut seen = std::collections::HashSet::with_capacity(total_stubs);
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(total_stubs);
        for (&u, &i) in user_stubs.iter().zip(&item_stubs) {
            if seen.insert((u, i)) {
                edges.push((u, i));
            }
        }

        // --- 3. k-core trim ------------------------------------------------------
        let raw: Vec<Rating> =
            edges.iter().map(|&(u, i)| Rating { user: u, item: i, stars: 5 }).collect();
        let core = kcore::trim(self.n_users, self.n_items, &raw, self.min_degree);
        let n_users = core.kept_users.len();
        let n_items = core.kept_items.len();

        // --- 4. Stars from per-item Dirichlet profiles ---------------------------
        let alpha: Vec<f64> = hist.iter().map(|h| h * self.rating_concentration).collect();
        let profiles: Vec<WeightedSampler> =
            (0..n_items).map(|_| WeightedSampler::new(&dirichlet(&mut rng, &alpha))).collect();
        let ratings: Vec<Rating> = core
            .ratings
            .iter()
            .map(|r| Rating {
                user: r.user,
                item: r.item,
                stars: profiles[r.item as usize].sample(&mut rng) as u8 + 1,
            })
            .collect();

        // --- 5. Prices -----------------------------------------------------------
        let bucket_sampler = WeightedSampler::new(&self.price_bucket_fractions);
        let prices: Vec<f64> = (0..n_items)
            .map(|_| {
                let b = bucket_sampler.sample(&mut rng);
                let (lo, hi) = self.price_bucket_ranges[b];
                // Round to cents for realistic price points.
                (rng.random_range(lo..=hi) * 100.0).round() / 100.0
            })
            .collect();

        RatingsData::new(n_users, n_items, ratings, prices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let a = AmazonBooksConfig::small().generate(123);
        let b = AmazonBooksConfig::small().generate(123);
        assert_eq!(a, b);
        let c = AmazonBooksConfig::small().generate(124);
        assert_ne!(a.ratings(), c.ratings());
    }

    #[test]
    fn small_respects_min_degree() {
        let d = AmazonBooksConfig::small().generate(1);
        let s = d.summary();
        assert!(s.min_user_degree >= 4, "min user degree {}", s.min_user_degree);
        assert!(s.min_item_degree >= 4, "min item degree {}", s.min_item_degree);
    }

    #[test]
    fn star_histogram_tracks_target() {
        let d = AmazonBooksConfig::medium().generate(7);
        let f = d.summary().star_fractions();
        let target = [0.03, 0.05, 0.13, 0.29, 0.49];
        for k in 0..5 {
            assert!(
                (f[k] - target[k]).abs() < 0.04,
                "star {k}: got {:.3}, want {:.3}",
                f[k],
                target[k]
            );
        }
    }

    #[test]
    fn price_buckets_track_target() {
        let d = AmazonBooksConfig::medium().generate(9);
        let f = d.summary().price_fractions();
        assert!((f[0] - 0.51).abs() < 0.08, "bucket0 {}", f[0]);
        assert!((f[1] - 0.45).abs() < 0.08, "bucket1 {}", f[1]);
        assert!(f[2] < 0.12, "bucket2 {}", f[2]);
        assert!(d.prices().iter().all(|&p| p > 0.0 && p < 35.0));
    }

    #[test]
    fn items_are_heterogeneous() {
        // With finite concentration, per-item mean stars must vary: that is
        // the property giving per-item price discrimination any bite.
        let d = AmazonBooksConfig::medium().generate(11);
        let mut sum = vec![0.0f64; d.n_items()];
        let mut cnt = vec![0usize; d.n_items()];
        for r in d.ratings() {
            sum[r.item as usize] += r.stars as f64;
            cnt[r.item as usize] += 1;
        }
        let means: Vec<f64> =
            sum.iter().zip(&cnt).filter(|(_, &c)| c > 0).map(|(s, &c)| s / c as f64).collect();
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo > 0.5, "item mean stars range too narrow: {lo}..{hi}");
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_config_panics() {
        let cfg = AmazonBooksConfig {
            n_users: 2,
            n_items: 100,
            min_degree: 10,
            mean_extra_degree: 0.1,
            ..AmazonBooksConfig::small()
        };
        cfg.generate(0);
    }
}
