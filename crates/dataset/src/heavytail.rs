//! Heavy-tailed WTP magnitudes: Pareto and lognormal redraws over a
//! dataset's rating structure.
//!
//! The paper's λ-linear rating→WTP map produces *bounded* valuations
//! (stars ≤ 5 → WTP ≤ λ·price), so the uniform/correlated generators can
//! never reach the infinite-variance regime van Eck–Kleer–van Leeuwaarden
//! (2025) study. [`heavy_tail_wtps`] keeps a dataset's bipartite
//! who-rated-what structure but **redraws the magnitudes** from a
//! heavy-tailed [`TailDist`]:
//!
//! * `Pareto { alpha }` — tail index α; smaller α = heavier tail, α ≤ 2
//!   has infinite variance, α ≤ 1 infinite mean.
//! * `LogNormal { sigma }` — log-scale σ; larger σ = heavier tail (always
//!   finite moments, but arbitrarily wild in practice).
//!
//! Draws are **mean-normalized** (unit expected magnitude where the mean
//! exists) and scaled by each item's listed price, so markets with
//! different tail knobs stay price-comparable: only the *shape* of the
//! valuation distribution changes, not its scale. Every magnitude is
//! clamped to `[MAG_MIN, MAG_MAX]` before price scaling — the inverse-CDF
//! and `exp` can overflow to `+∞` (or underflow to 0) at extreme draws,
//! and the WTP arena rejects non-positive or non-finite entries.
//!
//! Everything is seeded and deterministic: one vendored-RNG stream, the
//! seed mixed with the distribution's *family* (Pareto vs lognormal), and
//! edges visited in the dataset's canonical (user, item) order. Within a
//! family, every tail knob shares the same uniform stream — common random
//! numbers — so a tail-index sweep varies only the transform, not the
//! luck of the draw.

use crate::data::RatingsData;
use crate::stats::standard_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Magnitude clamp bounds (pre price-scaling): keep every WTP strictly
/// positive and comfortably finite even at 10⁶-draw scale.
pub const MAG_MIN: f64 = 1e-12;
/// See [`MAG_MIN`].
pub const MAG_MAX: f64 = 1e12;

/// A heavy-tailed magnitude distribution with unit mean (where it exists).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TailDist {
    /// Pareto with tail index `alpha > 0`; scale `x_m = (α−1)/α` for
    /// `α > 1` (unit mean), else `0.5` (the mean is infinite — no
    /// normalization exists).
    Pareto { alpha: f64 },
    /// Lognormal with `μ = −σ²/2` (unit mean) and log-scale `sigma > 0`.
    LogNormal { sigma: f64 },
}

impl TailDist {
    /// Validate the tail knob (positive and finite).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            TailDist::Pareto { alpha } if alpha.is_finite() && alpha > 0.0 => Ok(()),
            TailDist::Pareto { alpha } => {
                Err(format!("pareto tail index must be positive, got {alpha}"))
            }
            TailDist::LogNormal { sigma } if sigma.is_finite() && sigma > 0.0 => Ok(()),
            TailDist::LogNormal { sigma } => {
                Err(format!("lognormal sigma must be positive, got {sigma}"))
            }
        }
    }

    /// One magnitude draw, clamped to `[MAG_MIN, MAG_MAX]` (finite and
    /// strictly positive by construction).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let raw = match *self {
            TailDist::Pareto { alpha } => {
                let x_m = if alpha > 1.0 { (alpha - 1.0) / alpha } else { 0.5 };
                // Inverse CDF: x_m · (1−u)^(−1/α), u ∈ [0, 1).
                let u: f64 = rng.random();
                x_m * (1.0 - u).powf(-1.0 / alpha)
            }
            TailDist::LogNormal { sigma } => {
                let z = standard_normal(rng);
                (sigma * z - sigma * sigma / 2.0).exp()
            }
        };
        raw.clamp(MAG_MIN, MAG_MAX)
    }

    /// Fold the distribution's *family* into a seed (splitmix64 over a
    /// variant tag), so Pareto and LogNormal streams on the same seed
    /// differ. The tail knob is deliberately **not** mixed in: every knob
    /// of one family shares one underlying uniform stream (common random
    /// numbers), so a tail sweep compares markets that differ only through
    /// the inverse-CDF transform — the bundle-vs-separate curve over the
    /// knob is smooth instead of re-randomized at every grid point.
    fn mix_seed(&self, seed: u64) -> u64 {
        let tag: u64 = match *self {
            TailDist::Pareto { .. } => 1,
            TailDist::LogNormal { .. } => 2,
        };
        let mut z = seed.wrapping_add(tag.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// WTP triples `(user, item, wtp)` over `data`'s rating structure with
/// heavy-tailed magnitudes: `wtp = draw(dist) × listed_price(item)`.
/// Deterministic in `(data, dist, seed)`; triples arrive in the dataset's
/// canonical (user, item) order, ready for
/// `revmax_core::wtp::WtpMatrix::from_triples`.
pub fn heavy_tail_wtps(data: &RatingsData, dist: TailDist, seed: u64) -> Vec<(u32, u32, f64)> {
    dist.validate().expect("invalid tail distribution");
    let mut rng = StdRng::seed_from_u64(dist.mix_seed(seed));
    data.ratings()
        .iter()
        .map(|r| (r.user, r.item, dist.sample(&mut rng) * data.price(r.item)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AmazonBooksConfig;

    fn tiny() -> AmazonBooksConfig {
        AmazonBooksConfig { n_users: 48, n_items: 24, ..AmazonBooksConfig::small() }
    }

    #[test]
    fn deterministic_under_seed() {
        let data = tiny().generate(7);
        let a = heavy_tail_wtps(&data, TailDist::Pareto { alpha: 1.5 }, 42);
        let b = heavy_tail_wtps(&data, TailDist::Pareto { alpha: 1.5 }, 42);
        assert_eq!(a, b);
        let c = heavy_tail_wtps(&data, TailDist::Pareto { alpha: 1.5 }, 43);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn dist_identity_splits_streams() {
        let data = tiny().generate(7);
        let p = heavy_tail_wtps(&data, TailDist::Pareto { alpha: 2.0 }, 42);
        let p_heavier = heavy_tail_wtps(&data, TailDist::Pareto { alpha: 1.2 }, 42);
        let ln = heavy_tail_wtps(&data, TailDist::LogNormal { sigma: 2.0 }, 42);
        assert_ne!(p, p_heavier, "knobs transform the shared stream differently");
        assert_ne!(p, ln, "families draw from distinct streams");
    }

    #[test]
    fn tail_knobs_share_one_uniform_stream() {
        // Common random numbers: for a fixed seed, Pareto magnitudes are
        // comonotone across tail indices (the inverse CDF is monotone in u
        // for every α), so a tail sweep moves smoothly with the knob.
        let data = tiny().generate(7);
        let a = heavy_tail_wtps(&data, TailDist::Pareto { alpha: 4.0 }, 42);
        let b = heavy_tail_wtps(&data, TailDist::Pareto { alpha: 1.5 }, 42);
        let mut order_a: Vec<usize> = (0..a.len()).collect();
        order_a.sort_by(|&i, &j| a[i].2.total_cmp(&a[j].2));
        // Compare ranks within one item (same listed price) to avoid
        // price-scaling mixing ranks across items.
        let item = a[0].1;
        let ra: Vec<usize> = order_a.iter().copied().filter(|&i| a[i].1 == item).collect();
        let mut order_b: Vec<usize> = (0..b.len()).collect();
        order_b.sort_by(|&i, &j| b[i].2.total_cmp(&b[j].2));
        let rb: Vec<usize> = order_b.iter().copied().filter(|&i| b[i].1 == item).collect();
        assert_eq!(ra, rb, "same-u draws must rank identically across tail knobs");
    }

    #[test]
    fn triples_keep_structure_and_positivity() {
        let data = tiny().generate(3);
        let triples = heavy_tail_wtps(&data, TailDist::LogNormal { sigma: 1.5 }, 9);
        assert_eq!(triples.len(), data.ratings().len());
        for ((u, i, w), r) in triples.iter().zip(data.ratings()) {
            assert_eq!((*u, *i), (r.user, r.item));
            assert!(w.is_finite() && *w > 0.0, "wtp {w} must be positive finite");
        }
    }

    #[test]
    fn million_draws_stay_finite_even_in_infinite_mean_regimes() {
        // Satellite: the generators must survive 10^6-scale draws with
        // only finite positive output, including α ≤ 1 (infinite mean)
        // and extreme σ, where the un-clamped formulas overflow.
        let mut rng = StdRng::seed_from_u64(2015);
        for dist in [
            TailDist::Pareto { alpha: 0.8 },
            TailDist::Pareto { alpha: 2.0 },
            TailDist::LogNormal { sigma: 4.0 },
        ] {
            let mut max: f64 = 0.0;
            for _ in 0..1_000_000 {
                let x = dist.sample(&mut rng);
                assert!(x.is_finite() && x > 0.0, "{dist:?} produced {x}");
                max = max.max(x);
            }
            assert!(max <= MAG_MAX, "{dist:?} exceeded the clamp: {max}");
        }
    }

    #[test]
    fn mean_normalization_roughly_holds() {
        // Finite-mean regimes should average near 1 (they multiply listed
        // prices, so a drifting mean would silently rescale markets).
        let mut rng = StdRng::seed_from_u64(11);
        for dist in [TailDist::Pareto { alpha: 4.0 }, TailDist::LogNormal { sigma: 1.0 }] {
            let n = 200_000;
            let sum: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
            let mean = sum / n as f64;
            assert!((mean - 1.0).abs() < 0.1, "{dist:?} mean {mean}");
        }
    }

    #[test]
    fn rejects_bad_knobs() {
        assert!(TailDist::Pareto { alpha: 0.0 }.validate().is_err());
        assert!(TailDist::Pareto { alpha: f64::NAN }.validate().is_err());
        assert!(TailDist::LogNormal { sigma: -1.0 }.validate().is_err());
        assert!(TailDist::LogNormal { sigma: 1.0 }.validate().is_ok());
    }
}
