//! CSV persistence so the real Amazon dataset (or any ratings dump) can be
//! substituted for the synthetic one without code changes.
//!
//! Formats (headers required):
//!
//! * ratings file: `user,item,stars` — dense ids, stars 1..=5;
//! * prices file:  `item,price` — one row per item id `0..n_items`.

use crate::{Rating, RatingsData};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Save ratings and prices as two CSVs.
pub fn save(data: &RatingsData, ratings_path: &Path, prices_path: &Path) -> io::Result<()> {
    let mut rw = BufWriter::new(std::fs::File::create(ratings_path)?);
    writeln!(rw, "user,item,stars")?;
    for r in data.ratings() {
        writeln!(rw, "{},{},{}", r.user, r.item, r.stars)?;
    }
    rw.flush()?;
    let mut pw = BufWriter::new(std::fs::File::create(prices_path)?);
    writeln!(pw, "item,price")?;
    for (i, p) in data.prices().iter().enumerate() {
        writeln!(pw, "{i},{p}")?;
    }
    pw.flush()
}

/// Load ratings and prices from the two-CSV format written by [`save`].
/// User/item counts are inferred (max id + 1 for users; price rows for
/// items). Validation errors map to `io::ErrorKind::InvalidData`.
pub fn load(ratings_path: &Path, prices_path: &Path) -> io::Result<RatingsData> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);

    let mut prices = Vec::new();
    let pr = BufReader::new(std::fs::File::open(prices_path)?);
    for (lineno, line) in pr.lines().enumerate() {
        let line = line?;
        if lineno == 0 {
            if line.trim() != "item,price" {
                return Err(bad(format!("prices header must be 'item,price', got '{line}'")));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let item: usize = parse(parts.next(), "item", lineno)?;
        let price: f64 = parse(parts.next(), "price", lineno)?;
        if item != prices.len() {
            return Err(bad(format!(
                "prices must be listed densely: expected item {}, got {item} (line {lineno})",
                prices.len()
            )));
        }
        prices.push(price);
    }

    let mut ratings = Vec::new();
    let mut max_user = 0u32;
    let rr = BufReader::new(std::fs::File::open(ratings_path)?);
    for (lineno, line) in rr.lines().enumerate() {
        let line = line?;
        if lineno == 0 {
            if line.trim() != "user,item,stars" {
                return Err(bad(format!("ratings header must be 'user,item,stars', got '{line}'")));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let user: u32 = parse(parts.next(), "user", lineno)?;
        let item: u32 = parse(parts.next(), "item", lineno)?;
        let stars: u8 = parse(parts.next(), "stars", lineno)?;
        max_user = max_user.max(user);
        ratings.push(Rating { user, item, stars });
    }
    let n_users = if ratings.is_empty() { 0 } else { max_user as usize + 1 };
    // RatingsData::new panics on invariant violations; convert to errors.
    std::panic::catch_unwind(|| RatingsData::new(n_users, prices.len(), ratings, prices)).map_err(
        |e| {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "invalid dataset".into());
            bad(msg)
        },
    )
}

fn parse<T: std::str::FromStr>(field: Option<&str>, name: &str, lineno: usize) -> io::Result<T> {
    let raw = field.ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, format!("missing {name} on line {lineno}"))
    })?;
    raw.trim().parse().map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidData, format!("bad {name} '{raw}' on line {lineno}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AmazonBooksConfig;

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join("revmax_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let rp = dir.join("ratings.csv");
        let pp = dir.join("prices.csv");
        let d = AmazonBooksConfig::small().generate(3);
        save(&d, &rp, &pp).unwrap();
        let back = load(&rp, &pp).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn rejects_bad_header() {
        let dir = std::env::temp_dir().join("revmax_io_test_hdr");
        std::fs::create_dir_all(&dir).unwrap();
        let rp = dir.join("ratings.csv");
        let pp = dir.join("prices.csv");
        std::fs::write(&rp, "user;item;stars\n").unwrap();
        std::fs::write(&pp, "item,price\n0,5.0\n").unwrap();
        let err = load(&rp, &pp).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_bad_stars() {
        let dir = std::env::temp_dir().join("revmax_io_test_stars");
        std::fs::create_dir_all(&dir).unwrap();
        let rp = dir.join("ratings.csv");
        let pp = dir.join("prices.csv");
        std::fs::write(&rp, "user,item,stars\n0,0,9\n").unwrap();
        std::fs::write(&pp, "item,price\n0,5.0\n").unwrap();
        let err = load(&rp, &pp).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_sparse_price_rows() {
        let dir = std::env::temp_dir().join("revmax_io_test_sparse");
        std::fs::create_dir_all(&dir).unwrap();
        let rp = dir.join("ratings.csv");
        let pp = dir.join("prices.csv");
        std::fs::write(&rp, "user,item,stars\n").unwrap();
        std::fs::write(&pp, "item,price\n1,5.0\n").unwrap();
        let err = load(&rp, &pp).unwrap_err();
        assert!(err.to_string().contains("densely"));
    }
}
