//! # revmax-dataset — consumer ratings data for the bundling experiments
//!
//! The paper evaluates on the UIC Amazon review crawl (Jindal & Liu,
//! WSDM'08), Books category, 10-core filtered to **4,449 users × 5,028 items
//! × 108,291 ratings**. That dataset is not redistributable, so this crate
//! provides (a) a **seeded synthetic generator** reproducing every marginal
//! statistic the paper publishes, and (b) CSV loaders so the real data can
//! be dropped back in without code changes. See `DESIGN.md` §4 for the
//! substitution argument.
//!
//! Published marginals reproduced by [`AmazonBooksConfig`]:
//!
//! * rating histogram: 3% / 5% / 13% / 29% / 49% for 1..5 stars;
//! * listed prices: ~50% under $10, ~45% in $10–20, remainder above $20;
//! * both user and item degree ≥ 10 after iterative 10-core trimming;
//! * similar density (mean user degree ≈ 24, mean item degree ≈ 21.5).
//!
//! ```
//! use revmax_dataset::{AmazonBooksConfig, RatingsData};
//!
//! let data: RatingsData = AmazonBooksConfig::small().generate(42);
//! assert!(data.n_users() > 0 && data.n_items() > 0);
//! // Deterministic under the same seed.
//! let again = AmazonBooksConfig::small().generate(42);
//! assert_eq!(data.ratings(), again.ratings());
//! ```

mod data;
mod generator;
pub mod genre;
pub mod heavytail;
pub mod io;
pub mod kcore;
pub mod scale;
pub mod stats;

pub use data::{DatasetSummary, Rating, RatingsData};
pub use generator::AmazonBooksConfig;
pub use genre::GenreClusterConfig;
pub use heavytail::{heavy_tail_wtps, TailDist};
