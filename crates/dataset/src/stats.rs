//! Small statistical toolbox for the synthetic generator.
//!
//! The approved dependency set has `rand` but not `rand_distr`, so the few
//! distributions the generator needs are implemented here: standard normal
//! (Box–Muller), gamma (Marsaglia–Tsang), Dirichlet (normalized gammas),
//! bounded Zipf (by inverse CDF over precomputed weights), and a cumulative
//! weighted sampler.

use rand::Rng;

/// Standard normal via Box–Muller (the cached second value is dropped for
/// simplicity; the generator is not hot enough to care).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Gamma(shape, scale=1) via Marsaglia & Tsang's squeeze method; shapes < 1
/// are boosted with the standard `U^(1/shape)` correction.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0 && shape.is_finite(), "gamma shape must be positive, got {shape}");
    if shape < 1.0 {
        let u: f64 = rng.random();
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Dirichlet sample with concentration vector `alpha` (all entries > 0).
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: &[f64]) -> Vec<f64> {
    assert!(!alpha.is_empty(), "dirichlet needs at least one component");
    let gammas: Vec<f64> = alpha.iter().map(|&a| gamma(rng, a)).collect();
    let sum: f64 = gammas.iter().sum();
    if sum <= 0.0 {
        // Degenerate draw (possible only with pathological alphas): uniform.
        return vec![1.0 / alpha.len() as f64; alpha.len()];
    }
    gammas.into_iter().map(|g| g / sum).collect()
}

/// Sampler over `0..weights.len()` proportional to `weights`, by binary
/// search on the cumulative sums. O(log n) per draw.
#[derive(Debug, Clone)]
pub struct WeightedSampler {
    cumulative: Vec<f64>,
}

impl WeightedSampler {
    /// Build from non-negative weights, at least one positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative, got {w}");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        WeightedSampler { cumulative }
    }

    /// Draw an index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x: f64 = rng.random_range(0.0..total);
        match self.cumulative.binary_search_by(|c| c.total_cmp(&x)) {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }
}

/// Zipf weights over ranks `1..=n`: weight(r) = 1 / r^s.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "zipf needs at least one rank");
    (1..=n).map(|r| (r as f64).powf(-s)).collect()
}

/// Draw from `Exp(mean)` by inversion.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.random();
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn gamma_moments() {
        let mut r = rng();
        for shape in [0.5, 1.0, 2.5, 9.0] {
            let n = 20_000;
            let xs: Vec<f64> = (0..n).map(|_| gamma(&mut r, shape)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            assert!((mean - shape).abs() < 0.12 * shape.max(1.0), "shape {shape}: mean {mean}");
            assert!(xs.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn dirichlet_sums_to_one_and_tracks_alpha() {
        let mut r = rng();
        let alpha = [2.0, 4.0, 2.0];
        let mut acc = [0.0; 3];
        let n = 5_000;
        for _ in 0..n {
            let d = dirichlet(&mut r, &alpha);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for k in 0..3 {
                acc[k] += d[k];
            }
        }
        // Expectation alpha_k / sum(alpha) = [0.25, 0.5, 0.25].
        assert!((acc[1] / n as f64 - 0.5).abs() < 0.03);
    }

    #[test]
    fn weighted_sampler_respects_weights() {
        let mut r = rng();
        let ws = WeightedSampler::new(&[1.0, 0.0, 3.0]);
        let mut counts = [0usize; 3];
        for _ in 0..8_000 {
            counts[ws.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn zipf_is_decreasing() {
        let w = zipf_weights(10, 1.0);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
        assert!((w[0] / w[9] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 20_000;
        let m = (0..n).map(|_| exponential(&mut r, 14.0)).sum::<f64>() / n as f64;
        assert!((m - 14.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sampler_rejects_all_zero() {
        WeightedSampler::new(&[0.0, 0.0]);
    }
}
