//! Iterative k-core trimming of a bipartite ratings graph.
//!
//! "Since the ratings of some users or some books are very sparse, we
//! iteratively remove users and items with less than ten ratings until all
//! users and items have ten ratings each." — Section 6.1.1.

use crate::Rating;

/// Result of [`trim`]: surviving ratings with dense re-indexed ids, plus
/// the maps back to the original ids.
#[derive(Debug, Clone)]
pub struct KcoreResult {
    /// Ratings with remapped user/item ids.
    pub ratings: Vec<Rating>,
    /// `kept_users[new_id] = old_id`, ascending in old id.
    pub kept_users: Vec<u32>,
    /// `kept_items[new_id] = old_id`, ascending in old id.
    pub kept_items: Vec<u32>,
}

/// Iteratively remove users and items of degree < `min_degree` until every
/// surviving user and item has at least `min_degree` ratings. `min_degree`
/// of 0 or 1 keeps everything with at least one rating.
pub fn trim(n_users: usize, n_items: usize, ratings: &[Rating], min_degree: usize) -> KcoreResult {
    let mut user_alive = vec![true; n_users];
    let mut item_alive = vec![true; n_items];
    let mut user_deg = vec![0usize; n_users];
    let mut item_deg = vec![0usize; n_items];
    for r in ratings {
        user_deg[r.user as usize] += 1;
        item_deg[r.item as usize] += 1;
    }
    // Users/items with zero ratings are never part of the core.
    loop {
        let mut changed = false;
        for u in 0..n_users {
            if user_alive[u] && user_deg[u] < min_degree.max(1) {
                user_alive[u] = false;
                changed = true;
            }
        }
        for i in 0..n_items {
            if item_alive[i] && item_deg[i] < min_degree.max(1) {
                item_alive[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        user_deg.iter_mut().for_each(|d| *d = 0);
        item_deg.iter_mut().for_each(|d| *d = 0);
        for r in ratings {
            if user_alive[r.user as usize] && item_alive[r.item as usize] {
                user_deg[r.user as usize] += 1;
                item_deg[r.item as usize] += 1;
            }
        }
    }
    let kept_users: Vec<u32> = (0..n_users as u32).filter(|&u| user_alive[u as usize]).collect();
    let kept_items: Vec<u32> = (0..n_items as u32).filter(|&i| item_alive[i as usize]).collect();
    // Flat old-id → new-id rank vectors (the same dense-remap idiom the CSR
    // views use): one indexed load per surviving rating, no hashing.
    let mut user_map = vec![u32::MAX; n_users];
    for (new, &old) in kept_users.iter().enumerate() {
        user_map[old as usize] = new as u32;
    }
    let mut item_map = vec![u32::MAX; n_items];
    for (new, &old) in kept_items.iter().enumerate() {
        item_map[old as usize] = new as u32;
    }
    let ratings = ratings
        .iter()
        .filter(|r| user_alive[r.user as usize] && item_alive[r.item as usize])
        .map(|r| Rating {
            user: user_map[r.user as usize],
            item: item_map[r.item as usize],
            stars: r.stars,
        })
        .collect();
    KcoreResult { ratings, kept_users, kept_items }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(user: u32, item: u32) -> Rating {
        Rating { user, item, stars: 5 }
    }

    #[test]
    fn zero_min_degree_drops_isolated_only() {
        let ratings = vec![r(0, 0), r(1, 0)];
        let res = trim(3, 2, &ratings, 0);
        assert_eq!(res.kept_users, vec![0, 1]); // user 2 had no ratings
        assert_eq!(res.kept_items, vec![0]); // item 1 had no ratings
        assert_eq!(res.ratings.len(), 2);
    }

    #[test]
    fn cascade_removal() {
        // user1 depends on item1 which depends on user1: both fall when
        // min_degree = 2; user0/item0 pair survives only if degree >= 2.
        let ratings = vec![r(0, 0), r(0, 1), r(1, 0), r(1, 1), r(2, 2)];
        let res = trim(3, 3, &ratings, 2);
        // user2/item2 have degree 1 -> removed; users 0,1 and items 0,1
        // each have degree 2 among themselves -> survive.
        assert_eq!(res.kept_users, vec![0, 1]);
        assert_eq!(res.kept_items, vec![0, 1]);
        assert_eq!(res.ratings.len(), 4);
    }

    #[test]
    fn full_cascade_to_empty() {
        // A path structure collapses entirely at min_degree 2.
        let ratings = vec![r(0, 0), r(1, 0), r(1, 1), r(2, 1)];
        let res = trim(3, 2, &ratings, 2);
        assert!(res.ratings.is_empty());
        assert!(res.kept_users.is_empty());
        assert!(res.kept_items.is_empty());
    }

    #[test]
    fn ids_are_remapped_densely() {
        let ratings = vec![r(5, 7), r(5, 8), r(6, 7), r(6, 8)];
        let res = trim(10, 10, &ratings, 2);
        assert_eq!(res.kept_users, vec![5, 6]);
        assert_eq!(res.kept_items, vec![7, 8]);
        assert!(res.ratings.iter().all(|x| x.user < 2 && x.item < 2));
    }

    #[test]
    fn survivors_meet_min_degree() {
        // Random-ish structure; verify the invariant directly.
        let mut ratings = Vec::new();
        for u in 0..20u32 {
            for i in 0..(u % 7) {
                ratings.push(r(u, i));
            }
        }
        let res = trim(20, 7, &ratings, 3);
        let mut ud = std::collections::HashMap::new();
        let mut id = std::collections::HashMap::new();
        for x in &res.ratings {
            *ud.entry(x.user).or_insert(0usize) += 1;
            *id.entry(x.item).or_insert(0usize) += 1;
        }
        assert!(ud.values().all(|&d| d >= 3));
        assert!(id.values().all(|&d| d >= 3));
    }
}
