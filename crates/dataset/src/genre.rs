//! Genre-clustered preference generator for the information-goods scenarios
//! the paper's introduction motivates (cable-TV channel bundles, telecom
//! service packages): consumers belong to taste clusters and value items of
//! their cluster(s) much more than the rest.
//!
//! Unlike [`crate::AmazonBooksConfig`] (which reproduces a *ratings*
//! dataset), this generator emits willingness-to-pay rows directly — the
//! natural input for subscription goods where the "price list" is the
//! seller's decision variable, not data.

use crate::stats::WeightedSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the genre-cluster WTP generator.
#[derive(Debug, Clone)]
pub struct GenreClusterConfig {
    /// Items per genre (genre count = `genre_sizes.len()`).
    pub genre_sizes: Vec<usize>,
    /// Number of consumers.
    pub n_consumers: usize,
    /// WTP range for items of a consumer's favourite genre.
    pub favourite_range: (f64, f64),
    /// WTP range for the secondary genre.
    pub secondary_range: (f64, f64),
    /// WTP range for everything else (lower bound may be 0).
    pub background_range: (f64, f64),
    /// Probability that a background item gets zero WTP outright
    /// (sparsity).
    pub background_zero_prob: f64,
    /// Relative popularity of each genre (favourite-genre sampling
    /// weights); must match `genre_sizes.len()`.
    pub genre_popularity: Vec<f64>,
}

impl GenreClusterConfig {
    /// A cable-TV-like default: 4 genres × 10 channels, 600 subscribers.
    pub fn cable_tv() -> Self {
        GenreClusterConfig {
            genre_sizes: vec![10, 10, 10, 10],
            n_consumers: 600,
            favourite_range: (3.0, 6.0),
            secondary_range: (1.0, 3.0),
            background_range: (0.0, 1.0),
            background_zero_prob: 0.35,
            genre_popularity: vec![1.5, 1.0, 1.2, 0.8],
        }
    }

    /// Total item count.
    pub fn n_items(&self) -> usize {
        self.genre_sizes.iter().sum()
    }

    /// Genre index of an item id.
    pub fn genre_of(&self, item: usize) -> usize {
        let mut acc = 0;
        for (g, &sz) in self.genre_sizes.iter().enumerate() {
            acc += sz;
            if item < acc {
                return g;
            }
        }
        panic!("item {item} out of range ({} items)", self.n_items());
    }

    /// Generate dense WTP rows, deterministic in (config, seed).
    pub fn generate(&self, seed: u64) -> Vec<Vec<f64>> {
        assert!(!self.genre_sizes.is_empty(), "at least one genre required");
        assert!(self.genre_sizes.iter().all(|&s| s > 0), "genres must be non-empty");
        assert_eq!(
            self.genre_popularity.len(),
            self.genre_sizes.len(),
            "one popularity weight per genre"
        );
        assert!(
            (0.0..=1.0).contains(&self.background_zero_prob),
            "background_zero_prob must be a probability"
        );
        for (lo, hi) in [self.favourite_range, self.secondary_range, self.background_range] {
            assert!(lo >= 0.0 && hi >= lo, "WTP ranges must be ordered and non-negative");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let popularity = WeightedSampler::new(&self.genre_popularity);
        let n_items = self.n_items();
        let genre_of: Vec<usize> = (0..n_items).map(|i| self.genre_of(i)).collect();
        let mut rows = Vec::with_capacity(self.n_consumers);
        for _ in 0..self.n_consumers {
            let favourite = popularity.sample(&mut rng);
            let secondary = popularity.sample(&mut rng);
            let mut row = Vec::with_capacity(n_items);
            for &g in &genre_of {
                let w = if g == favourite {
                    sample_range(&mut rng, self.favourite_range)
                } else if g == secondary {
                    sample_range(&mut rng, self.secondary_range)
                } else if rng.random::<f64>() < self.background_zero_prob {
                    0.0
                } else {
                    sample_range(&mut rng, self.background_range)
                };
                row.push(w);
            }
            rows.push(row);
        }
        rows
    }
}

fn sample_range<R: Rng>(rng: &mut R, (lo, hi): (f64, f64)) -> f64 {
    if hi > lo {
        rng.random_range(lo..hi)
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shaped() {
        let cfg = GenreClusterConfig::cable_tv();
        let a = cfg.generate(3);
        let b = cfg.generate(3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 600);
        assert_eq!(a[0].len(), 40);
    }

    #[test]
    fn favourites_dominate() {
        // On average, a consumer's best genre should be worth much more
        // than the background.
        let cfg = GenreClusterConfig::cable_tv();
        let rows = cfg.generate(5);
        let mut fav_means = 0.0;
        for row in &rows {
            // Mean WTP per genre; max genre mean should be >= 3.0.
            let mut best: f64 = 0.0;
            for (g, &sz) in cfg.genre_sizes.iter().enumerate() {
                let start: usize = cfg.genre_sizes[..g].iter().sum();
                let mean: f64 = row[start..start + sz].iter().sum::<f64>() / sz as f64;
                best = best.max(mean);
            }
            fav_means += best;
        }
        let avg = fav_means / rows.len() as f64;
        assert!(avg > 3.0, "favourite-genre mean {avg}");
    }

    #[test]
    fn genre_of_maps_boundaries() {
        let cfg = GenreClusterConfig { genre_sizes: vec![2, 3], ..GenreClusterConfig::cable_tv() };
        assert_eq!(cfg.genre_of(0), 0);
        assert_eq!(cfg.genre_of(1), 0);
        assert_eq!(cfg.genre_of(2), 1);
        assert_eq!(cfg.genre_of(4), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn genre_of_rejects_overflow() {
        GenreClusterConfig::cable_tv().genre_of(40);
    }

    #[test]
    #[should_panic(expected = "popularity")]
    fn popularity_arity_checked() {
        let cfg =
            GenreClusterConfig { genre_popularity: vec![1.0], ..GenreClusterConfig::cable_tv() };
        cfg.generate(0);
    }
}
