//! Core data types: ratings, prices, and summary statistics.

/// One star rating: user `u` rated item `i` with `stars` in 1..=5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rating {
    pub user: u32,
    pub item: u32,
    pub stars: u8,
}

/// A ratings dataset with per-item listed prices.
///
/// Invariants (enforced by [`RatingsData::new`]): user/item ids are dense in
/// `0..n_users` / `0..n_items`, stars are in 1..=5, prices are finite and
/// positive with one entry per item, and (user, item) pairs are unique.
#[derive(Debug, Clone, PartialEq)]
pub struct RatingsData {
    n_users: usize,
    n_items: usize,
    ratings: Vec<Rating>,
    prices: Vec<f64>,
}

impl RatingsData {
    /// Construct and validate. Ratings are sorted (user, item) for
    /// determinism. Panics on any invariant violation.
    pub fn new(n_users: usize, n_items: usize, mut ratings: Vec<Rating>, prices: Vec<f64>) -> Self {
        assert_eq!(prices.len(), n_items, "one price per item required");
        for &p in &prices {
            assert!(p.is_finite() && p > 0.0, "prices must be positive and finite, got {p}");
        }
        for r in &ratings {
            assert!((r.user as usize) < n_users, "user {} out of range", r.user);
            assert!((r.item as usize) < n_items, "item {} out of range", r.item);
            assert!((1..=5).contains(&r.stars), "stars {} out of 1..=5", r.stars);
        }
        ratings.sort_by_key(|r| (r.user, r.item));
        for w in ratings.windows(2) {
            assert!(
                (w[0].user, w[0].item) != (w[1].user, w[1].item),
                "duplicate rating for (user {}, item {})",
                w[0].user,
                w[0].item
            );
        }
        RatingsData { n_users, n_items, ratings, prices }
    }

    pub fn n_users(&self) -> usize {
        self.n_users
    }

    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// All ratings, sorted by (user, item).
    pub fn ratings(&self) -> &[Rating] {
        &self.ratings
    }

    /// Ratings as `(user, item, stars)` triples, sorted by (user, item):
    /// the exact-size stream `WtpMatrix::from_ratings` feeds straight into
    /// its CSR builder.
    pub fn triples(&self) -> impl ExactSizeIterator<Item = (u32, u32, u8)> + '_ {
        self.ratings.iter().map(|r| (r.user, r.item, r.stars))
    }

    /// Listed price of each item.
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// Listed price of one item.
    pub fn price(&self, item: u32) -> f64 {
        self.prices[item as usize]
    }

    /// Per-user item lists (the "transactions" view used by the frequent
    /// itemset baselines).
    pub fn user_items(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.n_users];
        for r in &self.ratings {
            out[r.user as usize].push(r.item);
        }
        out
    }

    /// Summary statistics (used to validate the generator against the
    /// paper's published marginals).
    pub fn summary(&self) -> DatasetSummary {
        let mut star_hist = [0usize; 5];
        let mut user_deg = vec![0usize; self.n_users];
        let mut item_deg = vec![0usize; self.n_items];
        for r in &self.ratings {
            star_hist[(r.stars - 1) as usize] += 1;
            user_deg[r.user as usize] += 1;
            item_deg[r.item as usize] += 1;
        }
        let price_hist = {
            let mut h = [0usize; 3];
            for &p in &self.prices {
                if p < 10.0 {
                    h[0] += 1;
                } else if p <= 20.0 {
                    h[1] += 1;
                } else {
                    h[2] += 1;
                }
            }
            h
        };
        DatasetSummary {
            n_users: self.n_users,
            n_items: self.n_items,
            n_ratings: self.ratings.len(),
            star_hist,
            price_hist,
            min_user_degree: user_deg.iter().copied().min().unwrap_or(0),
            min_item_degree: item_deg.iter().copied().min().unwrap_or(0),
            mean_user_degree: self.ratings.len() as f64 / self.n_users.max(1) as f64,
            mean_item_degree: self.ratings.len() as f64 / self.n_items.max(1) as f64,
        }
    }
}

/// Aggregate statistics of a [`RatingsData`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    pub n_users: usize,
    pub n_items: usize,
    pub n_ratings: usize,
    /// Counts of 1..5 star ratings.
    pub star_hist: [usize; 5],
    /// Item counts by price bucket: `< $10`, `$10–20`, `> $20`.
    pub price_hist: [usize; 3],
    pub min_user_degree: usize,
    pub min_item_degree: usize,
    pub mean_user_degree: f64,
    pub mean_item_degree: f64,
}

impl DatasetSummary {
    /// Star histogram as fractions.
    pub fn star_fractions(&self) -> [f64; 5] {
        let n = self.n_ratings.max(1) as f64;
        std::array::from_fn(|k| self.star_hist[k] as f64 / n)
    }

    /// Price histogram as fractions.
    pub fn price_fractions(&self) -> [f64; 3] {
        let n = self.n_items.max(1) as f64;
        std::array::from_fn(|k| self.price_hist[k] as f64 / n)
    }
}

impl std::fmt::Display for DatasetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sf = self.star_fractions();
        let pf = self.price_fractions();
        writeln!(
            f,
            "users: {}  items: {}  ratings: {}",
            self.n_users, self.n_items, self.n_ratings
        )?;
        writeln!(
            f,
            "stars 1..5: {:.1}% {:.1}% {:.1}% {:.1}% {:.1}%",
            sf[0] * 100.0,
            sf[1] * 100.0,
            sf[2] * 100.0,
            sf[3] * 100.0,
            sf[4] * 100.0
        )?;
        writeln!(
            f,
            "prices: {:.1}% < $10, {:.1}% $10-20, {:.1}% > $20",
            pf[0] * 100.0,
            pf[1] * 100.0,
            pf[2] * 100.0
        )?;
        write!(
            f,
            "degrees: user >= {} (mean {:.1}), item >= {} (mean {:.1})",
            self.min_user_degree,
            self.mean_user_degree,
            self.min_item_degree,
            self.mean_item_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RatingsData {
        RatingsData::new(
            2,
            2,
            vec![
                Rating { user: 0, item: 0, stars: 5 },
                Rating { user: 0, item: 1, stars: 3 },
                Rating { user: 1, item: 1, stars: 1 },
            ],
            vec![9.99, 15.0],
        )
    }

    #[test]
    fn summary_counts() {
        let s = tiny().summary();
        assert_eq!(s.n_ratings, 3);
        assert_eq!(s.star_hist, [1, 0, 1, 0, 1]);
        assert_eq!(s.price_hist, [1, 1, 0]);
        assert_eq!(s.min_user_degree, 1);
        assert_eq!(s.mean_user_degree, 1.5);
    }

    #[test]
    fn user_items_view() {
        assert_eq!(tiny().user_items(), vec![vec![0, 1], vec![1]]);
    }

    #[test]
    #[should_panic(expected = "duplicate rating")]
    fn rejects_duplicates() {
        RatingsData::new(
            1,
            1,
            vec![Rating { user: 0, item: 0, stars: 5 }, Rating { user: 0, item: 0, stars: 4 }],
            vec![1.0],
        );
    }

    #[test]
    #[should_panic(expected = "stars")]
    fn rejects_bad_stars() {
        RatingsData::new(1, 1, vec![Rating { user: 0, item: 0, stars: 6 }], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_price() {
        RatingsData::new(1, 1, vec![], vec![0.0]);
    }
}
