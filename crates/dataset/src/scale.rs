//! Dataset scaling utilities for the scalability experiments (Figure 7) and
//! the weighted-set-packing comparison (Tables 4–5).

use crate::{Rating, RatingsData};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Checked id-space scaling: `count × factor` must stay addressable by
/// `u32` ids. Verified **before** any allocation, so an absurd factor
/// fails with a clear message naming it instead of attempting a
/// multi-terabyte reserve (or, worse, the silent `as u32` truncation this
/// replaces — cloned ids used to wrap past `u32::MAX` and collide at
/// exactly the scales the serving benchmarks target).
fn checked_scaled_ids(what: &str, count: usize, factor: usize) -> usize {
    count.checked_mul(factor).filter(|&total| total <= u32::MAX as usize).unwrap_or_else(|| {
        panic!(
            "clone factor {factor} overflows u32 {what} ids: \
                 {count} {what}s x {factor} copies > u32::MAX"
        )
    })
}

/// Clone every user `factor` times (Figure 7a's "multiplication factor":
/// factor 2 = 200% = twice as many users, identical ratings per clone).
/// `factor` must be ≥ 1; factor 1 returns an identical dataset. Panics —
/// before allocating — when the scaled user ids would not fit in `u32`.
pub fn clone_users(data: &RatingsData, factor: usize) -> RatingsData {
    assert!(factor >= 1, "factor must be >= 1");
    let n_users = checked_scaled_ids("user", data.n_users(), factor);
    let mut ratings = Vec::with_capacity(data.ratings().len() * factor);
    for copy in 0..factor {
        let offset = (copy * data.n_users()) as u32;
        for r in data.ratings() {
            ratings.push(Rating { user: r.user + offset, item: r.item, stars: r.stars });
        }
    }
    RatingsData::new(n_users, data.n_items(), ratings, data.prices().to_vec())
}

/// Clone every item `factor` times (used for item-axis scalability beyond
/// the base size; clones keep their price and their raters). Panics —
/// before allocating — when the scaled item ids would not fit in `u32`.
pub fn clone_items(data: &RatingsData, factor: usize) -> RatingsData {
    assert!(factor >= 1, "factor must be >= 1");
    let n_items = checked_scaled_ids("item", data.n_items(), factor);
    let mut ratings = Vec::with_capacity(data.ratings().len() * factor);
    for copy in 0..factor {
        let offset = (copy * data.n_items()) as u32;
        for r in data.ratings() {
            ratings.push(Rating { user: r.user, item: r.item + offset, stars: r.stars });
        }
    }
    let mut prices = Vec::with_capacity(n_items);
    for _ in 0..factor {
        prices.extend_from_slice(data.prices());
    }
    RatingsData::new(data.n_users(), n_items, ratings, prices)
}

/// Keep a uniformly random subset of `n` items (all users retained, as in
/// the paper's Tables 4–5 protocol: "we randomly select N items from the
/// universal set of 5,028 items, but include all the users").
///
/// Users who rated none of the sampled items simply have empty rows.
pub fn sample_items(data: &RatingsData, n: usize, seed: u64) -> RatingsData {
    assert!(n <= data.n_items(), "cannot sample {n} of {} items", data.n_items());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u32> = (0..data.n_items() as u32).collect();
    ids.shuffle(&mut rng);
    ids.truncate(n);
    ids.sort_unstable();
    keep_items(data, &ids)
}

/// Sample `n` items by growing a co-rating neighbourhood: start from a
/// random seed item, then repeatedly draw the next item from those sharing
/// at least one rater with the current sample (falling back to uniform when
/// the frontier is exhausted). All users are retained.
///
/// Rationale: the paper's Tables 4–5 protocol draws N random items and
/// keeps only samples where bundles of size ≥ 3 form. On the real Amazon
/// data random items still share genre communities; on a synthetic
/// catalogue with Zipf-random co-rating, uniformly random tuples almost
/// never co-rate, so the protocol needs locality-aware sampling to produce
/// comparable substructure (a "related inventory", as a real seller would
/// bundle). See EXPERIMENTS.md.
pub fn sample_items_correlated(data: &RatingsData, n: usize, seed: u64) -> RatingsData {
    assert!(n <= data.n_items(), "cannot sample {n} of {} items", data.n_items());
    let mut rng = StdRng::seed_from_u64(seed);
    // user -> items, item -> users.
    let user_items = data.user_items();
    let mut item_users: Vec<Vec<u32>> = vec![Vec::new(); data.n_items()];
    for r in data.ratings() {
        item_users[r.item as usize].push(r.user);
    }
    let mut selected: Vec<u32> = Vec::with_capacity(n);
    let mut in_sample = vec![false; data.n_items()];
    let mut frontier: Vec<u32> = Vec::new(); // co-rated, not yet selected
    let mut in_frontier = vec![false; data.n_items()];
    let seed_item = rng.random_range(0..data.n_items() as u32);
    let add = |item: u32,
               selected: &mut Vec<u32>,
               frontier: &mut Vec<u32>,
               in_sample: &mut Vec<bool>,
               in_frontier: &mut Vec<bool>| {
        selected.push(item);
        in_sample[item as usize] = true;
        for &u in &item_users[item as usize] {
            for &other in &user_items[u as usize] {
                if !in_sample[other as usize] && !in_frontier[other as usize] {
                    in_frontier[other as usize] = true;
                    frontier.push(other);
                }
            }
        }
    };
    add(seed_item, &mut selected, &mut frontier, &mut in_sample, &mut in_frontier);
    while selected.len() < n {
        // Drop already-selected entries lazily.
        while let Some(&last) = frontier.last() {
            if in_sample[last as usize] {
                frontier.pop();
            } else {
                break;
            }
        }
        let next = if frontier.is_empty() {
            // Uniform fallback.
            loop {
                let cand = rng.random_range(0..data.n_items() as u32);
                if !in_sample[cand as usize] {
                    break cand;
                }
            }
        } else {
            let k = rng.random_range(0..frontier.len());
            let cand = frontier.swap_remove(k);
            if in_sample[cand as usize] {
                continue;
            }
            cand
        };
        add(next, &mut selected, &mut frontier, &mut in_sample, &mut in_frontier);
    }
    selected.sort_unstable();
    keep_items(data, &selected)
}

/// Keep only the listed (original-id) items, remapping them densely in the
/// given order. All users are retained.
pub fn keep_items(data: &RatingsData, keep: &[u32]) -> RatingsData {
    let mut map = std::collections::HashMap::with_capacity(keep.len());
    for (new, &old) in keep.iter().enumerate() {
        assert!((old as usize) < data.n_items(), "item {old} out of range");
        let prev = map.insert(old, new as u32);
        assert!(prev.is_none(), "duplicate item {old} in keep list");
    }
    let ratings: Vec<Rating> = data
        .ratings()
        .iter()
        .filter_map(|r| {
            map.get(&r.item).map(|&ni| Rating { user: r.user, item: ni, stars: r.stars })
        })
        .collect();
    let prices: Vec<f64> = keep.iter().map(|&i| data.price(i)).collect();
    RatingsData::new(data.n_users(), keep.len(), ratings, prices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AmazonBooksConfig;

    fn base() -> RatingsData {
        AmazonBooksConfig::small().generate(5)
    }

    #[test]
    fn clone_users_scales_counts() {
        let d = base();
        let c = clone_users(&d, 3);
        assert_eq!(c.n_users(), 3 * d.n_users());
        assert_eq!(c.n_items(), d.n_items());
        assert_eq!(c.ratings().len(), 3 * d.ratings().len());
        // Clone 2's ratings mirror the originals.
        let orig = d.ratings()[0];
        let shifted =
            Rating { user: orig.user + d.n_users() as u32, item: orig.item, stars: orig.stars };
        assert!(c.ratings().contains(&shifted));
    }

    #[test]
    fn clone_users_factor_one_is_identity() {
        let d = base();
        assert_eq!(clone_users(&d, 1), d);
    }

    #[test]
    fn clone_items_scales_counts() {
        let d = base();
        let c = clone_items(&d, 2);
        assert_eq!(c.n_items(), 2 * d.n_items());
        assert_eq!(c.ratings().len(), 2 * d.ratings().len());
        assert_eq!(c.prices()[d.n_items()], d.prices()[0]);
    }

    #[test]
    fn sample_items_keeps_all_users() {
        let d = base();
        let s = sample_items(&d, 10, 42);
        assert_eq!(s.n_items(), 10);
        assert_eq!(s.n_users(), d.n_users());
        assert!(s.ratings().len() < d.ratings().len());
        // Deterministic.
        assert_eq!(sample_items(&d, 10, 42), s);
    }

    #[test]
    fn correlated_sampling_is_denser_than_uniform() {
        let d = AmazonBooksConfig::medium().generate(21);
        let corr = sample_items_correlated(&d, 12, 7);
        assert_eq!(corr.n_items(), 12);
        assert_eq!(corr.n_users(), d.n_users());
        // Deterministic.
        assert_eq!(sample_items_correlated(&d, 12, 7), corr);
        // Averaged over seeds, the correlated sample retains more ratings
        // (co-rated neighbourhoods) than the uniform sample. Per-seed
        // outcomes are noisy (either sampler can win on a single draw), so
        // average over enough seeds for the directional claim to be stable.
        let mut corr_total = 0usize;
        let mut unif_total = 0usize;
        for seed in 0..32 {
            corr_total += sample_items_correlated(&d, 12, seed).ratings().len();
            unif_total += sample_items(&d, 12, seed).ratings().len();
        }
        assert!(
            corr_total > unif_total,
            "correlated {corr_total} not denser than uniform {unif_total}"
        );
    }

    #[test]
    #[should_panic(expected = "clone factor 4294967295 overflows u32 user ids")]
    fn clone_users_rejects_id_overflow_before_allocating() {
        // Regression: the id offset was computed as `(copy * n) as u32`,
        // silently truncating past u32::MAX and colliding clone ids. The
        // check is pure id arithmetic and fires before any allocation, so
        // this test is cheap despite the absurd factor.
        let d = RatingsData::new(2, 1, vec![Rating { user: 0, item: 0, stars: 5 }], vec![1.0]);
        let _ = clone_users(&d, u32::MAX as usize);
    }

    #[test]
    #[should_panic(expected = "clone factor 2147483648 overflows u32 item ids")]
    fn clone_items_rejects_id_overflow_before_allocating() {
        let d = RatingsData::new(1, 3, vec![Rating { user: 0, item: 2, stars: 4 }], vec![1.0; 3]);
        let _ = clone_items(&d, (u32::MAX as usize).div_ceil(2));
    }

    #[test]
    fn clone_users_accepts_the_largest_in_range_factor_check() {
        // The guard is exact: count × factor == u32::MAX is still legal.
        assert_eq!(checked_scaled_ids("user", 3, u32::MAX as usize / 3), 4_294_967_295);
    }

    #[test]
    fn keep_items_remaps_in_order() {
        let d = base();
        let keep = vec![3u32, 7, 11];
        let s = keep_items(&d, &keep);
        assert_eq!(s.n_items(), 3);
        assert_eq!(s.price(0), d.price(3));
        assert_eq!(s.price(2), d.price(11));
    }

    #[test]
    #[should_panic(expected = "duplicate item")]
    fn keep_items_rejects_duplicates() {
        keep_items(&base(), &[1, 1]);
    }
}
