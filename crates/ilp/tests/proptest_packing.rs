//! Property tests: the three packing solvers agree where they must, and the
//! greedy respects its approximation bound (with wide margin in practice).

use proptest::prelude::*;
use revmax_ilp::subset_dp::solve_all_subsets;
use revmax_ilp::SetPacking;

/// Random instance: (n_items, sets as (mask, weight)).
fn arb_instance(
    max_items: usize,
    max_sets: usize,
) -> impl Strategy<Value = (usize, Vec<(u64, f64)>)> {
    (1usize..=max_items).prop_flat_map(move |n| {
        let set = (1u64..(1u64 << n), 0u32..2000).prop_map(|(mask, w)| (mask, w as f64 / 10.0));
        (Just(n), proptest::collection::vec(set, 0..=max_sets))
    })
}

fn build(n: usize, sets: &[(u64, f64)]) -> SetPacking {
    let mut sp = SetPacking::new(n);
    for &(mask, w) in sets {
        sp.add_mask(mask, w);
    }
    sp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn branch_and_bound_matches_exhaustive((n, sets) in arb_instance(8, 12)) {
        let sp = build(n, &sets);
        let bb = sp.solve_exact();
        let ex = sp.solve_exhaustive();
        prop_assert!((bb.total_weight - ex.total_weight).abs() < 1e-9,
            "b&b {} vs exhaustive {}", bb.total_weight, ex.total_weight);
        // The reported packing must be feasible and sum to the weight.
        let check = sp.check_feasible(&bb.chosen).expect("b&b infeasible");
        prop_assert!((check - bb.total_weight).abs() < 1e-9);
    }

    #[test]
    fn greedy_is_feasible_and_bounded((n, sets) in arb_instance(10, 16)) {
        let sp = build(n, &sets);
        let g = sp.solve_greedy();
        let check = sp.check_feasible(&g.chosen).expect("greedy infeasible");
        prop_assert!((check - g.total_weight).abs() < 1e-9);
        let opt = sp.solve_exact();
        prop_assert!(g.total_weight <= opt.total_weight + 1e-9);
        // √N approximation guarantee.
        let bound = opt.total_weight / (n as f64).sqrt();
        prop_assert!(g.total_weight + 1e-9 >= bound,
            "greedy {} below bound {} (opt {})", g.total_weight, bound, opt.total_weight);
    }

    #[test]
    fn subset_dp_matches_branch_and_bound(n in 1usize..8, seed in 0u64..500) {
        let mut weights = vec![0.0; 1usize << n];
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(7);
        for w in weights.iter_mut().skip(1) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Mix in some negative weights to exercise "leave unsold".
            *w = ((state >> 33) % 200) as f64 - 20.0;
        }
        let dp = solve_all_subsets(n, &weights);
        let mut sp = SetPacking::new(n);
        for m in 1..(1u64 << n) {
            sp.add_mask(m, weights[m as usize]);
        }
        let bb = sp.solve_exact();
        prop_assert!((dp.total_weight - bb.total_weight).abs() < 1e-9,
            "dp {} vs b&b {}", dp.total_weight, bb.total_weight);
        // DP's chosen sets are disjoint and sum correctly.
        let mut union = 0u32;
        let mut total = 0.0;
        for &s in &dp.chosen {
            prop_assert_eq!(union & s, 0);
            union |= s;
            total += weights[s as usize];
        }
        prop_assert!((total - dp.total_weight).abs() < 1e-9);
    }
}
