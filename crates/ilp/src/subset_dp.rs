//! Exact packing over *all* subsets of a small ground set, by subset DP.
//!
//! The paper's `Optimal` comparator enumerates every nonempty bundle
//! `b ⊆ I` (`2^N − 1` of them), computes each bundle's revenue, and solves
//! weighted set packing over that candidate family. When the candidate
//! family is literally "all subsets", the packing optimum satisfies a clean
//! recurrence over item masks:
//!
//! ```text
//!   best(∅)    = 0
//!   best(mask) = max( best(mask \ {low}),                    — leave `low` unsold
//!                     max_{s ⊆ mask, low ∈ s} w(s) + best(mask \ s) )
//! ```
//!
//! where `low` is the lowest item of `mask`. Anchoring every considered
//! subset at `low` avoids counting the same partition once per permutation.
//! Total work is `Σ_mask 2^|mask|` = `O(3^N)`; at the paper's N = 20 this is
//! ~3.5·10⁹ cheap operations, versus hours for a generic ILP on 2²⁰
//! variables.

/// Result of [`solve_all_subsets`].
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetDpResult {
    /// Optimal total weight over pairwise-disjoint subsets of the full set.
    pub total_weight: f64,
    /// The chosen subsets (as item bitmasks), a partition of the covered
    /// items.
    pub chosen: Vec<u32>,
}

/// Solve weighted set packing where every nonempty subset of `n` items is a
/// candidate with weight `weights[mask]` (`weights.len() == 1 << n`,
/// `weights[0]` ignored). Non-positive weights are never selected.
///
/// Memory: two `O(2^n)` tables. Panics if `n > 26` to avoid surprise
/// multi-gigabyte allocations; the paper's regime is `n ≤ 25`.
pub fn solve_all_subsets(n: usize, weights: &[f64]) -> SubsetDpResult {
    assert!(n <= 26, "subset DP limited to 26 items (got {n})");
    assert_eq!(weights.len(), 1usize << n, "weights must have 2^n entries");
    let full = 1usize << n;
    let mut best = vec![0.0f64; full];
    // choice[mask] = the subset anchored at the lowest bit selected at this
    // state, or 0 when the lowest item is left uncovered.
    let mut choice = vec![0u32; full];
    for mask in 1..full {
        let low = mask.trailing_zeros();
        let low_bit = 1usize << low;
        let rest = mask & !low_bit;
        // Leave `low` unsold.
        let mut b = best[rest];
        let mut c = 0u32;
        // Try every subset s ⊆ mask with low ∈ s: enumerate t ⊆ rest and
        // set s = t | low_bit.
        let mut t = rest;
        loop {
            let s = t | low_bit;
            let w = weights[s];
            if w > 0.0 {
                let cand = w + best[mask ^ s];
                if cand > b {
                    b = cand;
                    c = s as u32;
                }
            }
            if t == 0 {
                break;
            }
            t = (t - 1) & rest;
        }
        best[mask] = b;
        choice[mask] = c;
    }
    // Reconstruct the chosen partition.
    let mut chosen = Vec::new();
    let mut mask = full - 1;
    while mask != 0 {
        let c = choice[mask];
        if c == 0 {
            mask &= mask - 1; // drop the lowest bit (item left unsold)
        } else {
            chosen.push(c);
            mask ^= c as usize;
        }
    }
    SubsetDpResult { total_weight: best[full - 1], chosen }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SetPacking;

    /// Build the all-subsets weight table from an additive-with-synergy toy
    /// model so optima are easy to reason about.
    fn table(n: usize, f: impl Fn(u32) -> f64) -> Vec<f64> {
        (0..(1u32 << n)).map(|m| if m == 0 { 0.0 } else { f(m) }).collect()
    }

    #[test]
    fn single_item() {
        let w = table(1, |_| 5.0);
        let r = solve_all_subsets(1, &w);
        assert_eq!(r.total_weight, 5.0);
        assert_eq!(r.chosen, vec![0b1]);
    }

    #[test]
    fn additive_weights_prefer_singletons_or_anything() {
        // Purely additive: any partition of all items scores the same.
        let w = table(3, |m| m.count_ones() as f64);
        let r = solve_all_subsets(3, &w);
        assert_eq!(r.total_weight, 3.0);
        let union: u32 = r.chosen.iter().fold(0, |a, &s| {
            assert_eq!(a & s, 0, "overlap in chosen sets");
            a | s
        });
        assert_eq!(union, 0b111);
    }

    #[test]
    fn superadditive_prefers_grand_bundle() {
        let w = table(4, |m| {
            let k = m.count_ones() as f64;
            k * k // strictly superadditive
        });
        let r = solve_all_subsets(4, &w);
        assert_eq!(r.total_weight, 16.0);
        assert_eq!(r.chosen, vec![0b1111]);
    }

    #[test]
    fn subadditive_prefers_singletons() {
        let w = table(4, |m| (m.count_ones() as f64).sqrt());
        let r = solve_all_subsets(4, &w);
        assert!((r.total_weight - 4.0).abs() < 1e-12);
        assert_eq!(r.chosen.len(), 4);
    }

    #[test]
    fn negative_weights_leave_items_unsold() {
        let w = table(3, |m| if m == 0b011 { 4.0 } else { -1.0 });
        let r = solve_all_subsets(3, &w);
        assert_eq!(r.total_weight, 4.0);
        assert_eq!(r.chosen, vec![0b011]);
    }

    #[test]
    fn agrees_with_branch_and_bound() {
        // Pseudo-random weights; cross-check DP vs B&B on all subsets.
        let n = 8;
        let mut weights = vec![0.0; 1 << n];
        let mut state = 0x1234_5678_9abc_def0u64;
        for w in weights.iter_mut().skip(1) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *w = ((state >> 33) % 1000) as f64 / 10.0;
        }
        let dp = solve_all_subsets(n, &weights);
        let mut sp = SetPacking::new(n);
        for m in 1..(1u64 << n) {
            sp.add_mask(m, weights[m as usize]);
        }
        let bb = sp.solve_exact();
        assert!(
            (dp.total_weight - bb.total_weight).abs() < 1e-9,
            "dp {} vs b&b {}",
            dp.total_weight,
            bb.total_weight
        );
    }

    #[test]
    #[should_panic(expected = "2^n entries")]
    fn rejects_wrong_table_size() {
        solve_all_subsets(3, &[0.0; 4]);
    }
}
