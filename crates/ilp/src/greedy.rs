//! Greedy weighted set packing (the paper's `Greedy WSP` comparator).
//!
//! The paper describes "a greedy approach that repeatedly selects the next
//! set with the highest **average weight per item**" and attributes to it a
//! `√N` approximation guarantee, citing Gonen & Lehmann (EC'00) and
//! Chandra & Halldórsson (SODA'99). Those two statements don't match: the
//! average-weight rule (`w/|S|`) is only `Θ(N)`-approximate in the worst
//! case (a dense singleton can block one huge set), while the `√N`
//! guarantee belongs to the *norm-scaled* rule `w/√|S|` (Gonen–Lehmann /
//! Lehmann–O'Callaghan–Shoham). A property test in this crate exhibits a
//! concrete counterexample for the average-weight rule.
//!
//! Both rules are implemented; [`solve`] defaults to [`Rule::SqrtSize`],
//! the one that actually carries the cited guarantee.

use crate::{Packing, SetPacking};

/// Greedy selection criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Rule {
    /// `w / √|S|` — carries the √N approximation guarantee.
    #[default]
    SqrtSize,
    /// `w / |S|` — the paper's literal "average weight per item".
    PerItem,
}

/// Run the greedy with the default ([`Rule::SqrtSize`]) criterion.
pub fn solve(inst: &SetPacking) -> Packing {
    solve_with_rule(inst, Rule::default())
}

/// Run the greedy with an explicit selection rule.
pub fn solve_with_rule(inst: &SetPacking, rule: Rule) -> Packing {
    let score = |j: usize| -> f64 {
        let (mask, w) = inst.sets()[j];
        match rule {
            Rule::SqrtSize => w / (mask.count_ones() as f64).sqrt(),
            Rule::PerItem => w / mask.count_ones() as f64,
        }
    };
    let mut order: Vec<usize> = (0..inst.n_sets()).collect();
    order.sort_by(|&a, &b| {
        score(b)
            .total_cmp(&score(a))
            .then(inst.sets()[b].1.total_cmp(&inst.sets()[a].1))
            .then(a.cmp(&b))
    });
    let mut covered = 0u64;
    let mut chosen = Vec::new();
    let mut total = 0.0;
    for j in order {
        let (mask, w) = inst.sets()[j];
        if w <= 0.0 {
            break; // score-sorted: everything after is worthless too
        }
        if covered & mask == 0 {
            covered |= mask;
            chosen.push(j);
            total += w;
        }
    }
    chosen.sort_unstable();
    Packing { chosen, total_weight: total, covered }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(n: usize, sets: &[(&[usize], f64)]) -> SetPacking {
        let mut sp = SetPacking::new(n);
        for (items, w) in sets {
            sp.add_set(items, *w);
        }
        sp
    }

    #[test]
    fn empty() {
        let p = solve(&SetPacking::new(4));
        assert_eq!(p.total_weight, 0.0);
    }

    #[test]
    #[should_panic(expected = "weight must be finite")]
    fn nan_weight_is_rejected_at_the_instance_boundary() {
        // PR 5 class, two layers deep: `add_set` rejects non-finite
        // weights with a named guard, and the score sort itself is total
        // (total_cmp) so even a NaN that bypassed the guard could no
        // longer abort inside std's sort machinery.
        inst(3, &[(&[0], f64::NAN)]);
    }

    #[test]
    fn greedy_packing_is_deterministic_after_total_cmp() {
        // The comparator change must preserve the finite-input ordering,
        // including the weight tie-break between equal-score sets.
        let sp = inst(4, &[(&[0], 4.0), (&[1], 4.0), (&[2, 3], 4.0)]);
        for rule in [Rule::SqrtSize, Rule::PerItem] {
            let a = solve_with_rule(&sp, rule);
            let b = solve_with_rule(&sp, rule);
            assert_eq!(a.chosen, b.chosen, "{rule:?}");
            assert_eq!(a.chosen, vec![0, 1, 2], "{rule:?}");
        }
    }

    #[test]
    fn per_item_rule_misses_sqrt_bound() {
        // The counterexample to the paper's claim: {0} w=57 vs {0,1,2}
        // w=98.8 on 3 items. Average-weight greedy takes the singleton
        // (57 > 32.9) and lands below opt/√3 ≈ 57.04; the √-rule does not.
        let sp = inst(3, &[(&[0], 57.0), (&[0, 1, 2], 98.8)]);
        let per_item = solve_with_rule(&sp, Rule::PerItem);
        assert_eq!(per_item.total_weight, 57.0);
        assert!(per_item.total_weight < 98.8 / 3f64.sqrt());
        let sqrt_rule = solve_with_rule(&sp, Rule::SqrtSize);
        assert_eq!(sqrt_rule.total_weight, 98.8);
    }

    #[test]
    fn takes_best_density_first() {
        // {0} w=6 (density 6) beats {0,1} w=8 (per-item 4, per-sqrt 5.66):
        // both rules take {0} here; {1} has no candidate left.
        let sp = inst(2, &[(&[0, 1], 8.0), (&[0], 6.0)]);
        for rule in [Rule::SqrtSize, Rule::PerItem] {
            let p = solve_with_rule(&sp, rule);
            assert_eq!(p.total_weight, 6.0, "{rule:?}");
            assert_eq!(p.chosen, vec![1]);
        }
    }

    #[test]
    fn greedy_can_be_suboptimal_but_bounded() {
        // Greedy grabs the dense middle edge and blocks the two-edge
        // optimum — the approximation gap the paper measures in Table 4.
        let sp = inst(4, &[(&[0, 1], 10.0), (&[1, 2], 11.0), (&[2, 3], 10.0)]);
        let g = solve(&sp);
        let e = sp.solve_exhaustive();
        assert_eq!(g.total_weight, 11.0);
        assert_eq!(e.total_weight, 20.0);
        assert!(g.total_weight + 1e-9 >= e.total_weight / (4.0f64).sqrt());
    }

    #[test]
    fn skips_nonpositive() {
        let sp = inst(2, &[(&[0], 0.0), (&[1], -4.0)]);
        let p = solve(&sp);
        assert!(p.chosen.is_empty());
    }

    #[test]
    fn disjoint_sets_all_taken() {
        let sp = inst(4, &[(&[0], 1.0), (&[1], 2.0), (&[2], 3.0), (&[3], 4.0)]);
        let p = solve(&sp);
        assert_eq!(p.total_weight, 10.0);
        assert_eq!(p.chosen, vec![0, 1, 2, 3]);
        assert_eq!(p.covered, 0b1111);
    }
}
