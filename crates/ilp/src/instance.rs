//! Problem instance and solution types shared by the solvers.

/// A weighted set packing instance over at most 64 ground items.
///
/// Candidate sets are stored as `u64` bitmasks with `f64` weights. Weights
/// may be any finite value; sets with non-positive weight are legal inputs
/// but are never selected by any solver (a packing is not required to cover
/// anything).
#[derive(Debug, Clone)]
pub struct SetPacking {
    n_items: usize,
    sets: Vec<(u64, f64)>,
}

/// A feasible packing: pairwise-disjoint selected sets.
#[derive(Debug, Clone, PartialEq)]
pub struct Packing {
    /// Indices (into insertion order) of the selected sets.
    pub chosen: Vec<usize>,
    /// Total weight of the selected sets.
    pub total_weight: f64,
    /// Union of the selected sets, as an item bitmask.
    pub covered: u64,
}

impl Packing {
    pub(crate) fn empty() -> Self {
        Packing { chosen: Vec::new(), total_weight: 0.0, covered: 0 }
    }
}

impl SetPacking {
    /// Create an instance over `n_items` ground items (`n_items ≤ 64`).
    pub fn new(n_items: usize) -> Self {
        assert!(n_items <= 64, "SetPacking supports at most 64 items, got {n_items}");
        SetPacking { n_items, sets: Vec::new() }
    }

    /// Number of ground items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of candidate sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Candidate sets as `(mask, weight)` in insertion order.
    pub fn sets(&self) -> &[(u64, f64)] {
        &self.sets
    }

    /// Add a candidate set given its item indices. Returns the set's id.
    ///
    /// Panics on empty sets, duplicate items, out-of-range items, or
    /// non-finite weights.
    pub fn add_set(&mut self, items: &[usize], weight: f64) -> usize {
        assert!(!items.is_empty(), "candidate sets must be non-empty");
        let mut mask = 0u64;
        for &i in items {
            assert!(i < self.n_items, "item {i} out of range (n_items={})", self.n_items);
            assert!(mask & (1 << i) == 0, "duplicate item {i} in candidate set");
            mask |= 1 << i;
        }
        self.add_mask(mask, weight)
    }

    /// Add a candidate set given as a bitmask. Returns the set's id.
    pub fn add_mask(&mut self, mask: u64, weight: f64) -> usize {
        assert!(mask != 0, "candidate sets must be non-empty");
        if self.n_items < 64 {
            assert!(mask >> self.n_items == 0, "mask {mask:#x} exceeds n_items={}", self.n_items);
        }
        assert!(weight.is_finite(), "weight must be finite, got {weight}");
        self.sets.push((mask, weight));
        self.sets.len() - 1
    }

    /// Exact optimum via branch-and-bound. See [`crate::branch_bound`].
    pub fn solve_exact(&self) -> Packing {
        crate::branch_bound::solve(self)
    }

    /// `√N`-approximate optimum via the norm-scaled greedy (`w/√|S|`).
    /// See [`crate::greedy`] for why this rule, not the paper's literal
    /// "average weight per item", carries the guarantee.
    pub fn solve_greedy(&self) -> Packing {
        crate::greedy::solve(self)
    }

    /// Greedy with an explicit selection rule.
    pub fn solve_greedy_with_rule(&self, rule: crate::greedy::Rule) -> Packing {
        crate::greedy::solve_with_rule(self, rule)
    }

    /// Exhaustive reference solver: tries all `2^k` subsets of candidate
    /// sets. Only for tests; panics when more than 24 candidate sets.
    pub fn solve_exhaustive(&self) -> Packing {
        let k = self.sets.len();
        assert!(k <= 24, "exhaustive solver limited to 24 sets, got {k}");
        let mut best = Packing::empty();
        for pick in 0u32..(1u32 << k) {
            let mut covered = 0u64;
            let mut weight = 0.0;
            let mut ok = true;
            for (j, &(mask, w)) in self.sets.iter().enumerate() {
                if pick & (1 << j) != 0 {
                    if covered & mask != 0 {
                        ok = false;
                        break;
                    }
                    covered |= mask;
                    weight += w;
                }
            }
            if ok && weight > best.total_weight {
                best = Packing {
                    chosen: (0..k).filter(|&j| pick & (1 << j) != 0).collect(),
                    total_weight: weight,
                    covered,
                };
            }
        }
        best
    }

    /// Verify that `chosen` indices form a pairwise-disjoint family and
    /// return its total weight; used in tests and debug assertions.
    pub fn check_feasible(&self, chosen: &[usize]) -> Option<f64> {
        let mut covered = 0u64;
        let mut total = 0.0;
        for &j in chosen {
            let (mask, w) = *self.sets.get(j)?;
            if covered & mask != 0 {
                return None;
            }
            covered |= mask;
            total += w;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut sp = SetPacking::new(5);
        let a = sp.add_set(&[0, 2], 3.0);
        let b = sp.add_mask(0b11000, 4.0);
        assert_eq!((a, b), (0, 1));
        assert_eq!(sp.n_sets(), 2);
        assert_eq!(sp.sets()[0], (0b101, 3.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_set() {
        SetPacking::new(3).add_set(&[], 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_item() {
        SetPacking::new(3).add_set(&[3], 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_weight() {
        SetPacking::new(3).add_set(&[0], f64::NAN);
    }

    #[test]
    fn exhaustive_picks_disjoint_max() {
        let mut sp = SetPacking::new(4);
        sp.add_set(&[0, 1], 10.0);
        sp.add_set(&[1, 2], 12.0);
        sp.add_set(&[2, 3], 10.0);
        let p = sp.solve_exhaustive();
        assert_eq!(p.total_weight, 20.0);
        assert_eq!(p.chosen, vec![0, 2]);
        assert_eq!(p.covered, 0b1111);
    }

    #[test]
    fn exhaustive_ignores_negative_weights() {
        let mut sp = SetPacking::new(2);
        sp.add_set(&[0], -1.0);
        sp.add_set(&[1], 2.0);
        let p = sp.solve_exhaustive();
        assert_eq!(p.total_weight, 2.0);
        assert_eq!(p.chosen, vec![1]);
    }

    #[test]
    fn check_feasible_detects_overlap() {
        let mut sp = SetPacking::new(3);
        sp.add_set(&[0, 1], 1.0);
        sp.add_set(&[1, 2], 1.0);
        assert_eq!(sp.check_feasible(&[0]), Some(1.0));
        assert_eq!(sp.check_feasible(&[0, 1]), None);
    }
}
