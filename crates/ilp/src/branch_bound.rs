//! Exact branch-and-bound solver for weighted set packing.
//!
//! This plays the role of the commercial ILP solver (Gurobi) the paper uses
//! for its `Optimal` comparator. The 0-1 program is
//!
//! ```text
//!   maximize   Σ_j w_j x_j
//!   subject to Σ_{j : i ∈ S_j} x_j ≤ 1      for every item i
//!              x_j ∈ {0, 1}
//! ```
//!
//! Search strategy:
//!
//! * Candidate sets are pre-sorted by *density* (weight per item),
//!   descending; non-positive weights are dropped outright (never useful in
//!   a packing).
//! * Depth-first include/exclude branching over that order, including first.
//! * Upper bound at each node: fractional knapsack relaxation. Replace the
//!   disjointness constraints with the single aggregate constraint
//!   `Σ |S_j| x_j ≤ (#items still free)` and solve it fractionally by
//!   density order — a valid relaxation of the remaining subproblem, cheap
//!   to evaluate because the candidate list is already density-sorted.
//! * Dominance pre-pass: a set that is a superset of another with no more
//!   weight can be removed (choosing the smaller one is never worse).

use crate::{Packing, SetPacking};

/// Solve the instance exactly. Runtime is worst-case exponential in the
/// number of candidate sets, but the density bound keeps the paper-scale
/// instances (all subsets of ≤ 20 items) comfortably in range.
pub fn solve(inst: &SetPacking) -> Packing {
    // Keep positive-weight sets, remembering original ids.
    let mut cands: Vec<(u64, f64, usize)> = inst
        .sets()
        .iter()
        .enumerate()
        .filter(|(_, &(_, w))| w > 0.0)
        .map(|(id, &(mask, w))| (mask, w, id))
        .collect();
    // Dominance: drop any set that another set beats on both coverage
    // (subset) and weight (>=). Quadratic, only worthwhile for moderate
    // candidate counts.
    if cands.len() <= 4096 {
        let snapshot = cands.clone();
        cands.retain(|&(mask, w, id)| {
            !snapshot.iter().any(|&(m2, w2, id2)| {
                id2 != id && (m2 & mask) == m2 && w2 >= w && (m2 != mask || id2 < id)
            })
        });
    }
    // Sort by density, descending; ties by fewer items first.
    cands.sort_by(|a, b| {
        let da = a.1 / a.0.count_ones() as f64;
        let db = b.1 / b.0.count_ones() as f64;
        db.total_cmp(&da).then(a.0.count_ones().cmp(&b.0.count_ones()))
    });

    let mut best = Packing::empty();
    let mut stack_choice: Vec<usize> = Vec::new();
    let free_items = if inst.n_items() == 64 { u64::MAX } else { (1u64 << inst.n_items()) - 1 };
    dfs(&cands, 0, free_items, 0.0, &mut stack_choice, &mut best);
    best.chosen.sort_unstable();
    best.covered = best.chosen.iter().map(|&id| inst.sets()[id].0).fold(0, |a, m| a | m);
    best
}

/// Fractional knapsack relaxation of the subproblem `cands[from..]` with
/// `free` items remaining: a valid upper bound on the achievable weight.
fn fractional_bound(cands: &[(u64, f64, usize)], from: usize, free: u64) -> f64 {
    let mut cap = free.count_ones() as f64;
    let mut bound = 0.0;
    for &(mask, w, _) in &cands[from..] {
        if cap <= 0.0 {
            break;
        }
        if mask & !free != 0 {
            continue; // conflicts with current partial packing
        }
        let size = mask.count_ones() as f64;
        if size <= cap {
            bound += w;
            cap -= size;
        } else {
            bound += w * cap / size;
            cap = 0.0;
        }
    }
    bound
}

/// Depth-first search with include-first branching. Recursion depth is
/// bounded by the number of *included* sets (≤ 64, one item consumed each),
/// not by the candidate count: exclusion is handled iteratively in the scan
/// loop, with the bound re-checked after every exclusion.
fn dfs(
    cands: &[(u64, f64, usize)],
    from: usize,
    free: u64,
    acc: f64,
    chosen: &mut Vec<usize>,
    best: &mut Packing,
) {
    if acc > best.total_weight {
        best.total_weight = acc;
        best.chosen = chosen.clone();
    }
    if from >= cands.len() {
        return;
    }
    if acc + fractional_bound(cands, from, free) <= best.total_weight {
        return; // cannot improve
    }
    let mut j = from;
    while j < cands.len() {
        let (mask, w, id) = cands[j];
        if mask & !free == 0 {
            // Include cands[j] ...
            chosen.push(id);
            dfs(cands, j + 1, free & !mask, acc + w, chosen, best);
            chosen.pop();
            // ... then exclude it and keep scanning, re-pruning first.
            if acc + fractional_bound(cands, j + 1, free) <= best.total_weight {
                return;
            }
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(n: usize, sets: &[(&[usize], f64)]) -> SetPacking {
        let mut sp = SetPacking::new(n);
        for (items, w) in sets {
            sp.add_set(items, *w);
        }
        sp
    }

    #[test]
    fn empty_instance() {
        let sp = SetPacking::new(5);
        let p = solve(&sp);
        assert_eq!(p.total_weight, 0.0);
        assert!(p.chosen.is_empty());
    }

    #[test]
    #[should_panic(expected = "weight must be finite")]
    fn nan_weight_is_rejected_at_the_instance_boundary() {
        // PR 5 class, two layers deep: `add_set` rejects non-finite
        // weights with a named guard, and the density sort itself is total
        // (total_cmp) so even a NaN that bypassed the guard could no
        // longer abort inside std's sort machinery.
        inst(2, &[(&[0], f64::NAN)]);
    }

    #[test]
    fn picks_disjoint_pair_over_heavy_middle() {
        let sp = inst(4, &[(&[0, 1], 10.0), (&[1, 2], 12.0), (&[2, 3], 10.0)]);
        let p = solve(&sp);
        assert_eq!(p.total_weight, 20.0);
        assert_eq!(p.chosen, vec![0, 2]);
    }

    #[test]
    fn overlapping_triplets() {
        // {0,1,2} w=9 vs {0,1} w=5 + {2} w=5 = 10.
        let sp = inst(3, &[(&[0, 1, 2], 9.0), (&[0, 1], 5.0), (&[2], 5.0)]);
        let p = solve(&sp);
        assert_eq!(p.total_weight, 10.0);
    }

    #[test]
    fn negative_and_zero_weights_never_chosen() {
        let sp = inst(3, &[(&[0], -2.0), (&[1], 0.0), (&[2], 1.0)]);
        let p = solve(&sp);
        assert_eq!(p.total_weight, 1.0);
        assert_eq!(p.chosen.len(), 1);
    }

    #[test]
    fn matches_exhaustive_on_fixed_instance() {
        let sp = inst(
            6,
            &[
                (&[0, 1], 7.0),
                (&[1, 2], 3.0),
                (&[2, 3], 8.0),
                (&[3, 4], 4.0),
                (&[4, 5], 7.0),
                (&[0, 5], 2.0),
                (&[0, 1, 2], 11.0),
                (&[3, 4, 5], 10.5),
            ],
        );
        let a = solve(&sp);
        let b = sp.solve_exhaustive();
        assert_eq!(a.total_weight, b.total_weight);
        assert_eq!(sp.check_feasible(&a.chosen), Some(a.total_weight));
    }

    #[test]
    fn dominated_sets_do_not_change_optimum() {
        // {0,1} w=5 dominates {0,1} w=3 and is itself dominated by {0} w=5
        // + {1} w=5 combos only through search, not the dominance pass.
        let sp = inst(2, &[(&[0, 1], 3.0), (&[0, 1], 5.0), (&[0], 4.0), (&[1], 2.0)]);
        let p = solve(&sp);
        assert_eq!(p.total_weight, 6.0); // {0} + {1}
    }

    #[test]
    fn all_64_items_supported() {
        let mut sp = SetPacking::new(64);
        for i in 0..64 {
            sp.add_set(&[i], 1.0);
        }
        sp.add_set(&(0..64).collect::<Vec<_>>(), 63.5);
        let p = solve(&sp);
        assert_eq!(p.total_weight, 64.0);
    }
}
