//! # revmax-ilp — exact and approximate 0-1 weighted set packing
//!
//! Section 5.2 of *Mining Revenue-Maximizing Bundling Configuration*
//! (VLDB'15) reduces optimal pure bundling (after enumerating all `2^N − 1`
//! candidate bundles) to **weighted set packing**: pick pairwise-disjoint
//! candidate bundles with maximum total revenue. The paper solves the exact
//! problem with a commercial ILP solver (Gurobi) and compares against the
//! greedy approximation with a known `√N` bound. This crate provides both
//! from scratch:
//!
//! * [`SetPacking`] with [`SetPacking::solve_exact`] — a branch-and-bound
//!   0-1 solver with a fractional (knapsack-relaxation) upper bound and
//!   density-sorted branching. Exact for any instance; practical for the
//!   paper's `N ≤ 20` regime.
//! * [`subset_dp::solve_all_subsets`] — the special case the paper actually
//!   needs, where *every* nonempty subset of items is a candidate: a subset
//!   dynamic program over item masks (`O(3^N)` time) that is considerably
//!   faster than generic branch-and-bound there.
//! * [`SetPacking::solve_greedy`] — the `√N`-approximate greedy (the
//!   paper's `Greedy WSP`). Note: the paper says "highest average weight
//!   per item" but attributes the `√N` bound of Gonen & Lehmann, which
//!   belongs to the `w/√|S|` rule; see [`greedy`] for the discrepancy and
//!   a counterexample.
//! * [`SetPacking::solve_exhaustive`] — reference solver for tests.
//!
//! ```
//! use revmax_ilp::SetPacking;
//!
//! let mut sp = SetPacking::new(4);
//! sp.add_set(&[0, 1], 10.0);
//! sp.add_set(&[1, 2], 12.0);
//! sp.add_set(&[2, 3], 10.0);
//! let best = sp.solve_exact();
//! assert_eq!(best.total_weight, 20.0); // {0,1} + {2,3} beats {1,2}
//! ```

pub mod branch_bound;
pub mod greedy;
mod instance;
pub mod subset_dp;

pub use instance::{Packing, SetPacking};
