//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, deterministic implementation of exactly the surface the revmax
//! crates use: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`random`, `random_range`, `random_bool`), [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`). The generator behind [`rngs::StdRng`]
//! is xoshiro256++ seeded via SplitMix64 — not the ChaCha12 of the real
//! crate, but statistically solid and fully reproducible from a `u64` seed,
//! which is all the test- and experiment-suites rely on.

use std::ops::{Bound, RangeBounds};

/// Core RNG interface: raw random words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, by fixed-size seed or a single `u64`.
pub trait SeedableRng: Sized {
    type Seed;
    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a plain `rng.random()` call.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample from empty range");
                let span = span as u128;
                // Plain modulo reduction over a 128-bit draw: the modulo
                // bias is at most span/2^128, immaterial for test sampling.
                let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (lo_w + (x % span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        assert!(if inclusive { lo <= hi } else { lo < hi }, "empty float range");
        let u = f64::sample_standard(rng);
        let v = lo + u * (hi - lo);
        if v >= hi && !inclusive {
            lo // clamp the (measure-zero) endpoint back into range
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        f64::sample_in(rng, lo as f64, hi as f64, inclusive) as f32
    }
}

/// Extension trait with the ergonomic sampling helpers.
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn random_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: RangeBounds<T>,
    {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(_) => panic!("exclusive start bounds unsupported"),
            Bound::Unbounded => panic!("unbounded ranges unsupported"),
        };
        match range.end_bound() {
            Bound::Included(&hi) => T::sample_in(self, lo, hi, true),
            Bound::Excluded(&hi) => T::sample_in(self, lo, hi, false),
            Bound::Unbounded => panic!("unbounded ranges unsupported"),
        }
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }

    // rand 0.8 spellings, kept as aliases so older idioms still compile.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: RangeBounds<T>,
    {
        self.random_range(range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.random_bool(p)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (k, chunk) in seed.chunks_exact(8).enumerate() {
                s[k] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s.iter().all(|&x| x == 0) {
                s = [1, 2, 3, 4]; // xoshiro must not start at the all-zero state
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    /// Alias used by some call sites for a cheap non-crypto generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and choosing, à la `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x: usize = rng.random_range(0..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues reached");
        for _ in 0..1000 {
            let x: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(2.0..10.0);
            assert!((2.0..10.0).contains(&x));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.2)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }
}
