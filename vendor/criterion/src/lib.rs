//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API the revmax benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with a simple but honest measurement loop: a warm-up phase to
//! estimate per-iteration cost, then timed batches reported as
//! mean / min / max per iteration. No statistical analysis, HTML reports,
//! or baseline comparison; enough for `cargo bench` to compile, run, and
//! print usable numbers.
//!
//! When the `BENCH_JSON` environment variable names a file, every
//! benchmark's estimates are additionally appended to that file as a JSON
//! array (`[{"id", "mean_ns", "min_ns", "max_ns", "iters"}, …]`, rewritten
//! after each benchmark so a partial run still leaves valid JSON) — the
//! machine-readable summary the `BENCH_*.json` trajectory files record.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One exported benchmark estimate (see `BENCH_JSON`).
struct JsonEntry {
    id: String,
    mean_ns: u128,
    min_ns: u128,
    max_ns: u128,
    iters: u64,
}

/// Estimates accumulated for the `BENCH_JSON` export. Process-global, but
/// `cargo bench` runs each bench *binary* as its own process against the
/// same file, so every write merges with what previous binaries left
/// behind (same-id entries are superseded) instead of truncating it.
static JSON_ENTRIES: Mutex<Vec<JsonEntry>> = Mutex::new(Vec::new());

/// Serialize entries as a JSON array (one object per benchmark).
fn render_json(entries: &[JsonEntry]) -> String {
    let mut out = String::from("[\n");
    for (k, e) in entries.iter().enumerate() {
        if k > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"iters\": {}}}",
            e.id, e.mean_ns, e.min_ns, e.max_ns, e.iters
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Parse entries previously written by [`render_json`] (best effort: only
/// the exact format this module emits; anything else is dropped).
fn parse_json(body: &str) -> Vec<JsonEntry> {
    let field = |line: &str, key: &str| -> Option<u128> {
        let tail = &line[line.find(key)? + key.len()..];
        let digits: String = tail
            .chars()
            .skip_while(|c| !c.is_ascii_digit())
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().ok()
    };
    body.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            let id = line.strip_prefix("{\"id\": \"")?.split('"').next()?.to_string();
            Some(JsonEntry {
                id,
                mean_ns: field(line, "\"mean_ns\"")?,
                min_ns: field(line, "\"min_ns\"")?,
                max_ns: field(line, "\"max_ns\"")?,
                iters: field(line, "\"iters\"")? as u64,
            })
        })
        .collect()
}

fn export_json(label: &str, s: Sample) {
    let Ok(path) = std::env::var("BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let mut entries = JSON_ENTRIES.lock().expect("bench json registry poisoned");
    if entries.is_empty() {
        // First export of this process: adopt earlier binaries' entries.
        if let Ok(existing) = std::fs::read_to_string(&path) {
            *entries = parse_json(&existing);
        }
    }
    entries.retain(|e| e.id != label);
    entries.push(JsonEntry {
        id: label.to_string(),
        mean_ns: s.mean.as_nanos(),
        min_ns: s.min.as_nanos(),
        max_ns: s.max.as_nanos(),
        iters: s.iters_total,
    });
    if let Err(e) = std::fs::write(&path, render_json(&entries)) {
        eprintln!("BENCH_JSON: failed to write {path}: {e}");
    }
}

/// Re-export of `std::hint::black_box` under criterion's historic name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher<'a> {
    samples: usize,
    measurement_time: Duration,
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters_total: u64,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: estimate per-iteration cost (and pay one-time caches).
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        let warmup_budget = Duration::from_millis(25);
        while warmup_start.elapsed() < warmup_budget {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;

        // Size batches so `samples` batches fit the measurement budget.
        let budget_per_sample = self.measurement_time / self.samples as u32;
        let batch = if per_iter.is_zero() {
            1024
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };

        let mut durations = Vec::with_capacity(self.samples);
        let mut iters_total = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            durations.push(t.elapsed() / batch as u32);
            iters_total += batch;
        }
        let min = *durations.iter().min().unwrap();
        let max = *durations.iter().max().unwrap();
        let mean = durations.iter().sum::<Duration>() / durations.len() as u32;
        *self.result = Some(Sample { mean, min, max, iters_total });
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_millis(400) }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        run_one(None, id.into(), sample_size, measurement_time, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), id.into(), self.sample_size, self.measurement_time, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), id.into(), self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: BenchmarkId,
    samples: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let mut result = None;
    let mut bencher = Bencher { samples, measurement_time, result: &mut result };
    f(&mut bencher);
    match result {
        Some(s) => {
            println!(
                "{label:<48} time: [{} {} {}]  ({} iters)",
                fmt_duration(s.min),
                fmt_duration(s.mean),
                fmt_duration(s.max),
                s.iters_total
            );
            export_json(&label, s);
        }
        None => println!("{label:<48} (no measurement: closure never called iter)"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn json_render_produces_valid_entries() {
        // The renderer is tested directly (mutating BENCH_JSON from a test
        // would race concurrently-running benchmarks reading it).
        let entries = vec![
            JsonEntry { id: "g/a".into(), mean_ns: 120, min_ns: 100, max_ns: 150, iters: 4 },
            JsonEntry { id: "g/b".into(), mean_ns: 9, min_ns: 8, max_ns: 11, iters: 2 },
        ];
        let body = render_json(&entries);
        assert!(body.trim_start().starts_with('['), "not a JSON array: {body}");
        assert!(body.trim_end().ends_with(']'), "unterminated array: {body}");
        assert!(body.contains(
            "{\"id\": \"g/a\", \"mean_ns\": 120, \"min_ns\": 100, \"max_ns\": 150, \"iters\": 4}"
        ));
        assert_eq!(body.matches("\"id\"").count(), 2);
    }

    #[test]
    fn json_parse_round_trips_render() {
        // The merge path (a later bench binary adopting an earlier one's
        // file) depends on parse ∘ render being the identity.
        let entries = vec![
            JsonEntry {
                id: "p/x/1000".into(),
                mean_ns: 19532,
                min_ns: 18769,
                max_ns: 22851,
                iters: 20940,
            },
            JsonEntry { id: "e/y".into(), mean_ns: 5, min_ns: 4, max_ns: 7, iters: 1 },
        ];
        let parsed = parse_json(&render_json(&entries));
        assert_eq!(parsed.len(), 2);
        for (a, b) in entries.iter().zip(&parsed) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.mean_ns, b.mean_ns);
            assert_eq!(a.min_ns, b.min_ns);
            assert_eq!(a.max_ns, b.max_ns);
            assert_eq!(a.iters, b.iters);
        }
        assert!(parse_json("not json at all").is_empty());
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).measurement_time(Duration::from_millis(4));
        let data = vec![1u64, 2, 3];
        g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>());
        });
        g.finish();
    }
}
