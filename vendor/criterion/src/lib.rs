//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API the revmax benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with a simple but honest measurement loop: a warm-up phase to
//! estimate per-iteration cost, then timed batches reported as
//! mean / min / max per iteration. No statistical analysis, HTML reports,
//! or baseline comparison; enough for `cargo bench` to compile, run, and
//! print usable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's historic name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher<'a> {
    samples: usize,
    measurement_time: Duration,
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters_total: u64,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: estimate per-iteration cost (and pay one-time caches).
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        let warmup_budget = Duration::from_millis(25);
        while warmup_start.elapsed() < warmup_budget {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;

        // Size batches so `samples` batches fit the measurement budget.
        let budget_per_sample = self.measurement_time / self.samples as u32;
        let batch = if per_iter.is_zero() {
            1024
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };

        let mut durations = Vec::with_capacity(self.samples);
        let mut iters_total = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            durations.push(t.elapsed() / batch as u32);
            iters_total += batch;
        }
        let min = *durations.iter().min().unwrap();
        let max = *durations.iter().max().unwrap();
        let mean = durations.iter().sum::<Duration>() / durations.len() as u32;
        *self.result = Some(Sample { mean, min, max, iters_total });
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_millis(400) }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        run_one(None, id.into(), sample_size, measurement_time, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), id.into(), self.sample_size, self.measurement_time, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), id.into(), self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: BenchmarkId,
    samples: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let mut result = None;
    let mut bencher = Bencher { samples, measurement_time, result: &mut result };
    f(&mut bencher);
    match result {
        Some(s) => println!(
            "{label:<48} time: [{} {} {}]  ({} iters)",
            fmt_duration(s.min),
            fmt_duration(s.mean),
            fmt_duration(s.max),
            s.iters_total
        ),
        None => println!("{label:<48} (no measurement: closure never called iter)"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).measurement_time(Duration::from_millis(4));
        let data = vec![1u64, 2, 3];
        g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>());
        });
        g.finish();
    }
}
