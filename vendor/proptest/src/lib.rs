//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the revmax test-suites use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `prop_filter_map`, range and tuple strategies, [`Just`],
//! [`collection::vec`], [`test_runner::ProptestConfig`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion message
//!   (which in these suites always embeds the relevant values); the case
//!   index and RNG seed are printed so the failure replays exactly.
//! * **Deterministic.** Case `k` of every test draws from a fixed seed
//!   derived from `k`, so `cargo test` is reproducible run to run.

pub use crate::strategy::Just;

#[doc(hidden)]
pub use rand as __rand;

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// How many draws a filtering strategy may reject before giving up.
    const MAX_REJECTS: u32 = 10_000;

    /// A generator of random values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `generate` returns the
    /// value directly and failures are not shrunk.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f, reason }
        }

        fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap { inner: self, f, reason }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            for _ in 0..MAX_REJECTS {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({:?}): too many rejected draws", self.reason);
        }
    }

    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            for _ in 0..MAX_REJECTS {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map({:?}): too many rejected draws", self.reason);
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.start..self.end)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(*self.start()..=*self.end())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive length bounds for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Seed for case `k`: fixed constant mixed with the case index, so runs are
/// reproducible and each case sees an independent stream.
#[doc(hidden)]
pub fn case_seed(case: u32) -> u64 {
    0x7E57_5EED_u64 ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let __seed = $crate::case_seed(__case);
                    let mut __rng = <$crate::__rand::rngs::StdRng as
                        $crate::__rand::SeedableRng>::seed_from_u64(__seed);
                    let __guard = $crate::CaseGuard::new(__case, __seed);
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                    __guard.passed();
                }
            }
        )*
    };
}

/// Prints the failing case/seed if the test body panics (RAII, no
/// `catch_unwind` needed so non-`UnwindSafe` bodies still work).
#[doc(hidden)]
pub struct CaseGuard {
    case: u32,
    seed: u64,
    passed: std::cell::Cell<bool>,
}

impl CaseGuard {
    pub fn new(case: u32, seed: u64) -> Self {
        CaseGuard { case, seed, passed: std::cell::Cell::new(false) }
    }

    pub fn passed(&self) {
        self.passed.set(true);
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if !self.passed.get() {
            eprintln!(
                "proptest: failure at case {} (rng seed {:#x}); \
                 cases are deterministic, rerun to replay",
                self.case, self.seed
            );
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = (2usize..=5, -3i32..3).prop_map(|(a, b)| (a * 2, b));
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!((4..=10).contains(&a) && a % 2 == 0);
            assert!((-3..3).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let s = crate::collection::vec(0u32..10, 3..=6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 1u32..100, (a, mut b) in (0i32..5, 0i32..5)) {
            b += 1;
            prop_assert!((1..100).contains(&x));
            prop_assert!(a < 5 && b <= 5);
            prop_assert_ne!(b, 0);
        }
    }
}
