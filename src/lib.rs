//! # revmax — revenue-maximizing bundle configuration
//!
//! Facade crate re-exporting the `revmax` workspace: a from-scratch Rust
//! reproduction of *Mining Revenue-Maximizing Bundling Configuration*
//! (Do, Lauw, Wang — PVLDB 8(5), 2015).
//!
//! The workspace is organised as one crate per subsystem:
//!
//! * [`core`] ([`revmax_core`]) — the paper's contribution: willingness-to-pay
//!   modelling, the stochastic adoption model, optimal single-bundle pricing,
//!   and the pure/mixed bundle-configuration algorithms (matching-based and
//!   greedy) plus every baseline the paper evaluates against.
//! * [`matching`] ([`revmax_matching`]) — maximum-weight matching on general
//!   graphs (Edmonds' blossom algorithm), the substrate behind the optimal
//!   2-sized configuration and Algorithm 1.
//! * [`ilp`] ([`revmax_ilp`]) — exact and approximate 0-1 weighted set
//!   packing, the substrate behind the `Optimal` and `Greedy WSP`
//!   comparators of Section 5.2/6.4.
//! * [`fim`] ([`revmax_fim`]) — maximal frequent itemset mining
//!   (MAFIA-style), the substrate behind the `FreqItemset` baselines.
//! * [`dataset`] ([`revmax_dataset`]) — a seeded synthetic stand-in for the
//!   paper's (unavailable) Amazon Books ratings crawl, plus loaders for real
//!   data.
//! * [`par`] ([`revmax_par`]) — deterministic parallel execution primitives
//!   (`std::thread::scope`, no dependencies); results are bit-identical
//!   regardless of the thread count (`DESIGN.md` §6).
//! * [`engine`] ([`revmax_engine`]) — the sharded multi-market sweep
//!   engine: grids over (configurator × partition × θ × scale × seed)
//!   expand into a job DAG, execute on `par` under the same determinism
//!   contract, and collapse repeated cells through a fingerprint-keyed
//!   solve cache (`DESIGN.md` §8).
//! * [`serve`] ([`revmax_serve`]) — the batched menu-serving layer: a
//!   solved configuration compiles into a flat, `Arc`-shared `MenuIndex`
//!   answering `assign` / `expected_revenue` queries for millions of
//!   consumers, bit-identically at any thread count (`DESIGN.md` §9).
//!
//! ## Quickstart
//!
//! ```
//! use revmax::core::prelude::*;
//!
//! // Table 1 of the paper: two items, three consumers, theta = -0.05.
//! let w = WtpMatrix::from_rows(vec![
//!     vec![12.0, 4.0],
//!     vec![8.0, 2.0],
//!     vec![5.0, 11.0],
//! ]);
//! let params = Params::default().with_theta(-0.05);
//! let market = Market::new(w, params);
//!
//! let mixed = MixedMatching::default().run(&market);
//! assert!(mixed.revenue() > 27.0); // beats the $27 Components baseline
//! ```
pub use revmax_core as core;
pub use revmax_dataset as dataset;
pub use revmax_engine as engine;
pub use revmax_fim as fim;
pub use revmax_ilp as ilp;
pub use revmax_matching as matching;
pub use revmax_par as par;
pub use revmax_serve as serve;

/// Library version, mirroring the workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
