//! Cable-TV scenario: information goods with near-zero marginal cost and
//! large bundles — the paper's motivating example for unconstrained bundle
//! sizes ("For information goods (e.g., cable television), bundle sizes can
//! grow very large, e.g., hundreds").
//!
//! Synthesizes taste-cluster preferences over 40 channels (sports / news /
//! movies / kids), marks channels mildly complementary (θ > 0: shared
//! infrastructure, binge behaviour), and shows pure bundling collapsing the
//! catalogue into a few genre tiers.
//!
//! ```sh
//! cargo run --release --example cable_tv
//! ```

use revmax::core::prelude::*;
use revmax::dataset::GenreClusterConfig;

const GENRES: [(&str, std::ops::Range<usize>); 4] =
    [("sports", 0..10), ("news", 10..20), ("movies", 20..30), ("kids", 30..40)];

fn main() {
    // Each subscriber loves 1–2 genres (WTP $3–6 per channel) and is
    // lukewarm about the rest ($0–1).
    let rows = GenreClusterConfig::cable_tv().generate(7);

    let params = Params::default().with_theta(0.05);
    let market = Market::new(WtpMatrix::from_rows(rows), params);

    let components = Components::optimal().run(&market);
    let pure = PureMatching::default().run(&market);
    println!(
        "a-la-carte channels: ${:>9.2} ({:.1}% of total WTP)",
        components.revenue,
        components.coverage * 100.0
    );
    println!(
        "pure bundling tiers: ${:>9.2} ({:.1}% of total WTP, +{:.1}% gain)",
        pure.revenue,
        pure.coverage * 100.0,
        pure.gain * 100.0
    );

    let mut tiers: Vec<_> = pure.config.roots.iter().collect();
    tiers.sort_by_key(|r| std::cmp::Reverse(r.bundle.len()));
    println!("\ntiers on the menu ({} total):", tiers.len());
    for t in tiers.iter().take(6) {
        // Describe the tier by its genre mix.
        let mut mix = Vec::new();
        for (name, span) in GENRES.iter() {
            let k = t.bundle.items().iter().filter(|&&i| span.contains(&(i as usize))).count();
            if k > 0 {
                mix.push(format!("{k} {name}"));
            }
        }
        println!("  {:>2} channels at ${:>6.2}  ({})", t.bundle.len(), t.price, mix.join(", "));
    }
    assert!(pure.revenue >= components.revenue);
}
