//! Per-segment bundling: partition the market into consumer cohorts with
//! `Market::partition_by`, solve each zero-copy `MarketView` with the same
//! configurators as the whole market, and compare.
//!
//! Segment-tailored configurations can only help: each segment gets its
//! own bundle menu and prices, so the summed revenue dominates the single
//! whole-market menu (third-degree price discrimination on top of
//! bundling). The views share the whole market's WTP arena — nothing is
//! rebuilt.
//!
//! ```sh
//! cargo run --release --example segmented
//! ```

use revmax::core::prelude::*;
use revmax::dataset::AmazonBooksConfig;

fn main() {
    let data = AmazonBooksConfig::small().generate(2015);
    let params = Params::default().with_theta(0.05);
    let wtp = WtpMatrix::from_ratings(
        data.n_users(),
        data.n_items(),
        data.triples(),
        data.prices(),
        params.lambda,
    );
    let market = Market::new(wtp, params);
    println!(
        "market: {} consumers x {} items, total WTP ${:.2}",
        market.n_users(),
        market.n_items(),
        market.total_wtp()
    );

    // Cohort labels: three behavioural segments by activity (row length) —
    // light, regular, and heavy raters. Any labelling works; this one is
    // cheap to compute and splits the market unevenly on purpose.
    let labels: Vec<u32> = (0..market.n_users() as u32)
        .map(|u| match market.wtp().row(u).len() {
            0..=4 => 0, // light
            5..=8 => 1, // regular
            _ => 2,     // heavy
        })
        .collect();
    let views = market.partition_by(&labels);
    let names = ["light", "regular", "heavy"];
    println!("segments:");
    for v in &views {
        println!(
            "  {:<8} {:>4} consumers  total WTP ${:>9.2}",
            names[v.label().unwrap() as usize],
            v.n_users(),
            v.total_wtp()
        );
    }
    println!();

    for (name, configurator) in registry() {
        let whole = configurator.run(&market);
        // Every configurator runs unchanged on each view (deref coercion:
        // &MarketView → &Market), solving each cohort independently.
        let per_segment: f64 = views.iter().map(|v| configurator.run(v).revenue).sum();
        println!(
            "{:<18} whole-market ${:>9.2}   per-segment ${:>9.2}   lift {:>5.2}%",
            name,
            whole.revenue,
            per_segment,
            (per_segment / whole.revenue - 1.0) * 100.0
        );
    }
}
