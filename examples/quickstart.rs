//! Quickstart: the paper's Table 1 market end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use revmax::core::prelude::*;

fn main() {
    // Three consumers, two items (A = 0, B = 1), θ = −0.05 (mild
    // substitutes) — exactly Table 1 of the paper.
    let wtp = WtpMatrix::from_rows(vec![
        vec![12.0, 4.0], // u1
        vec![8.0, 2.0],  // u2
        vec![5.0, 11.0], // u3
    ]);
    let market = Market::new(wtp, Params::default().with_theta(-0.05));
    println!(
        "market: {} consumers x {} items, total WTP ${:.2}\n",
        market.n_users(),
        market.n_items(),
        market.total_wtp()
    );

    for method in [
        Box::new(Components::optimal()) as Box<dyn Configurator>,
        Box::new(PureMatching::default()),
        Box::new(MixedMatching::default()),
    ] {
        let out = method.run(&market);
        println!(
            "{:<16} revenue ${:>6.2}  coverage {:>5.1}%  gain {:>5.1}%",
            out.algorithm,
            out.revenue,
            out.coverage * 100.0,
            out.gain * 100.0
        );
        for offer in out.config.offers() {
            println!("    sell {} at ${:.2}", offer.bundle, offer.price);
        }
        println!();
    }
}
