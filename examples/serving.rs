//! Solve → compile → serve: the production path from a mined menu to
//! per-consumer answers (`DESIGN.md` §9).
//!
//! Run with `cargo run --release --example serving`.

use revmax::core::prelude::*;
use revmax::engine::{run_sweep, SweepSpec};
use revmax::serve::{compile_sweep_cell, MenuIndex};

fn main() {
    // 1. Solve a menu the classical way: Table 1's market, mixed matching.
    let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
    let market = Market::new(w, Params::default().with_theta(-0.05));
    let solved = MixedMatching::default().run(&market);
    println!("solved menu:\n{}", solved.config);

    // 2. Compile it into a read-optimized index and serve queries.
    let index = MenuIndex::compile(&market, &solved.config);
    println!("index: {} offer nodes, {} on sale", index.n_nodes(), index.n_offers());
    for a in index.assign(&index.all_users()) {
        let held: Vec<String> = a.offers.iter().map(|&o| format!("{:?}", index.items(o))).collect();
        println!("  user {} pays {:.2} for {}", a.user, a.payment, held.join(" + "));
    }
    let revenue = index.expected_revenue_all();
    println!("expected revenue: {:.2} (solver said {:.2})", revenue, solved.revenue);
    assert!((revenue - solved.revenue).abs() < 1e-9);

    // 3. The same, straight out of a sweep: any cell of a SweepReport —
    //    whole-market or cohort — compiles into an index in one call.
    let mut spec = SweepSpec::default();
    spec.apply("methods", "mixed_greedy").unwrap();
    spec.apply("scales", "tiny").unwrap();
    spec.apply("cohorts", "2").unwrap();
    spec.apply("threads", "1").unwrap();
    let report = run_sweep(&spec).unwrap();
    println!("\nsweep cells -> serving indexes:");
    for k in 0..report.cells.len() {
        let (cell_market, cell_index) = compile_sweep_cell(&spec, &report, k).unwrap();
        let served = cell_index.expected_revenue_all();
        let cell = &report.cells[k];
        println!(
            "  {} {} ({} users): served {:.2} vs solved {:.2}",
            cell.method,
            cell.cohort,
            cell_market.n_users(),
            served,
            cell.revenue
        );
        assert!((served - cell.revenue).abs() <= 1e-9 * cell.revenue.abs().max(1.0));
    }

    // 4. Determinism: the batched total is bit-identical at any fan-out.
    let r1 = index.clone().with_threads(1).expected_revenue_all();
    let r8 = index.clone().with_threads(8).expected_revenue_all();
    assert_eq!(r1.to_bits(), r8.to_bits());
    println!("\n1-thread and 8-thread serving agree bit for bit: {r1}");
}
