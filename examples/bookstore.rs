//! Bookstore scenario: mine bundle configurations from star ratings, the
//! paper's headline use case (§6.1.1, Amazon Books).
//!
//! Generates the synthetic Amazon-Books-like dataset, converts ratings to
//! willingness to pay with the λ-linear map, and compares non-bundling,
//! pure, and mixed strategies — then prints the most lucrative bundles the
//! mixed strategy discovered, Table-6 style.
//!
//! ```sh
//! cargo run --release --example bookstore
//! ```

use revmax::core::prelude::*;
use revmax::dataset::AmazonBooksConfig;

fn main() {
    let data = AmazonBooksConfig::medium().generate(2015);
    println!("bookstore catalogue:\n{}\n", data.summary());

    let params = Params::default(); // λ=1.25, θ=0, step adoption, k unlimited
    let wtp = WtpMatrix::from_ratings(
        data.n_users(),
        data.n_items(),
        data.ratings().iter().map(|r| (r.user, r.item, r.stars)),
        data.prices(),
        params.lambda,
    );
    let market = Market::new(wtp, params);

    let components = Components::optimal().run(&market);
    let mixed = MixedMatching::default().run(&market);
    println!(
        "Components: ${:>10.2} ({:.1}% of total WTP)",
        components.revenue,
        components.coverage * 100.0
    );
    println!(
        "Mixed     : ${:>10.2} ({:.1}% of total WTP, +{:.2}% gain) in {} iterations",
        mixed.revenue,
        mixed.coverage * 100.0,
        mixed.gain * 100.0,
        mixed.trace.iterations()
    );

    // The five largest bundles by size, with their nested menu.
    let mut roots: Vec<_> = mixed.config.roots.iter().filter(|r| r.bundle.len() >= 2).collect();
    roots.sort_by_key(|r| std::cmp::Reverse(r.bundle.len()));
    println!("\ntop bundles on the menu:");
    let brief = |b: &Bundle| -> String {
        let ids: Vec<String> = b.items().iter().take(6).map(u32::to_string).collect();
        if b.len() > 6 {
            format!("{{{},…+{}}}", ids.join(","), b.len() - 6)
        } else {
            b.to_string()
        }
    };
    for r in roots.iter().take(5) {
        println!(
            "  bundle of {:>3} books at ${:>7.2}  {}",
            r.bundle.len(),
            r.price,
            brief(&r.bundle)
        );
        for c in &r.children {
            println!(
                "      subsumes {:>3} books at ${:>7.2}  {}",
                c.bundle.len(),
                c.price,
                brief(&c.bundle)
            );
        }
    }
}
