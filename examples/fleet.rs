//! Fleet-scale segmented selling through the sweep engine: one spec
//! solves every (configurator × cohort × θ) cell of a many-cohort market
//! partition, and the per-cohort menus beat the whole-market menu — the
//! third-degree price discrimination headroom of `examples/segmented.rs`,
//! now orchestrated by `revmax-engine` instead of a hand-rolled loop.
//!
//! The spec deliberately repeats the seed axis: the duplicate cells are
//! collapsed by the fingerprint-keyed solve cache (`DESIGN.md` §8), so
//! the run also demonstrates a nonzero cache hit-rate.
//!
//! ```sh
//! cargo run --release --example fleet
//! ```

use revmax::engine::{run_sweep, Cohort, SweepSpec};

fn main() {
    let mut spec = SweepSpec::default(); // all seven registry methods
    spec.apply("scales", "small").unwrap();
    spec.apply("thetas", "0.05").unwrap();
    spec.apply("seeds", "2015,2015").unwrap(); // repeat → cache hits
    spec.apply("cohorts", "6").unwrap();
    let report = run_sweep(&spec).expect("valid spec");

    println!(
        "fleet sweep: {} cells over {} markets ({} unique solves, {} cache hits)\n",
        report.cells.len(),
        report.dag.markets,
        report.cache.misses,
        report.cache.hits
    );

    // Per method: the whole-market menu vs the sum of the 6 cohort menus.
    println!("{:<18} {:>14} {:>14} {:>7}", "method", "whole-market", "per-cohort", "lift");
    let methods: Vec<String> = {
        let mut seen = Vec::new();
        for c in &report.cells {
            if !seen.contains(&c.method) {
                seen.push(c.method.clone());
            }
        }
        seen
    };
    for method in methods {
        let whole = report
            .cells
            .iter()
            .find(|c| c.method == method && c.cohort == Cohort::Whole)
            .expect("whole-market cell");
        let per_cohort: f64 = report
            .cells
            .iter()
            .filter(|c| {
                c.method == method && c.cohort != Cohort::Whole && c.seed == whole.seed && !c.cached
            })
            .map(|c| c.revenue)
            .sum();
        println!(
            "{:<18} {:>13.2} {:>13.2} {:>6.2}%",
            method,
            whole.revenue,
            per_cohort,
            (per_cohort / whole.revenue - 1.0) * 100.0
        );
        assert!(
            per_cohort >= whole.revenue,
            "{method}: segment-tailored menus cannot lose revenue"
        );
    }

    println!(
        "\ncache hit rate {:.1}% (the repeated seed axis collapsed {} duplicate cells)",
        report.hit_rate() * 100.0,
        report.cache.hits
    );
    println!(
        "dag: {} datasets -> {} markets -> {} partitions -> {} solves",
        report.dag.datasets, report.dag.markets, report.dag.partitions, report.dag.solves
    );
}
