//! Data-marketplace scenario (§1): a Data-as-a-Service provider groups
//! correlated datasets — "selling a hotel list and a review database, or
//! data sets and related analysis reports". Utility is non-monetary
//! ("user satisfaction" credits), and the provider cares about consumer
//! surplus too, so the full two-sided objective
//! `α·profit + (1−α)·surplus` is exercised with α = 0.7.
//!
//! ```sh
//! cargo run --release --example data_marketplace
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revmax::core::prelude::*;

fn main() {
    // 12 data products: 4 correlated families of 3 (raw data, cleaned
    // version, analysis report). Buyers want whole families.
    let n_products = 12;
    let n_buyers = 300;
    let mut rng = StdRng::seed_from_u64(11);
    let mut rows = Vec::with_capacity(n_buyers);
    for _ in 0..n_buyers {
        let family = rng.random_range(0..4);
        let mut row = vec![0.0f64; n_products];
        for f in 0..4 {
            for k in 0..3 {
                let idx = f * 3 + k;
                row[idx] = if f == family {
                    rng.random_range(20.0..50.0) // satisfaction credits
                } else if rng.random_bool(0.2) {
                    rng.random_range(2.0..10.0)
                } else {
                    0.0
                };
            }
        }
        rows.push(row);
    }

    // Complementary data products (reports are worth more with the raw
    // data), a two-sided objective, and moderate stochasticity in adoption
    // (data buyers trial before committing).
    let params = Params::default().with_theta(0.08).with_objective_alpha(0.7).with_gamma(2.0);
    let market = Market::new(WtpMatrix::from_rows(rows), params);

    let components = Components::optimal().run(&market);
    let mixed = MixedMatching::default().run(&market);
    println!(
        "itemized catalogue : {:>9.2} credits captured ({:.1}% of demand)",
        components.revenue,
        components.coverage * 100.0
    );
    println!(
        "mixed data bundles : {:>9.2} credits captured ({:.1}% of demand, +{:.1}%)",
        mixed.revenue,
        mixed.coverage * 100.0,
        mixed.gain * 100.0
    );

    println!("\nbundled data products:");
    for r in mixed.config.roots.iter().filter(|r| r.bundle.len() >= 2) {
        println!("  {} at {:.1} credits", r.bundle, r.price);
    }
    // Stochastic evaluation, averaged like the paper's ten runs.
    let mut rng = StdRng::seed_from_u64(99);
    let sampled = mixed.config.sampled_revenue(&market, &mut rng, 10);
    println!("\n10-run sampled revenue of the mixed menu: {sampled:.2} credits");
}
