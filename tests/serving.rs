//! Acceptance tests for the batched serving layer (`DESIGN.md` §9): a
//! `clone_users`-scaled market served through a compiled `MenuIndex` must
//! be bit-identical across 1/2/8 serve threads, linear in the clone
//! factor, and agree with core's solver-side menu evaluation. (The full
//! ≥10⁶-user sweep of the same checks runs in CI's `serve-smoke` leg via
//! the release-mode `serve_bench` binary; this debug-mode test keeps the
//! scale at ~10⁴ so `cargo test` stays fast.)

use revmax::core::algorithms::by_name;
use revmax::dataset::scale::clone_users;
use revmax::dataset::AmazonBooksConfig;
use revmax::engine::market_from_data;
use revmax::serve::{solver_user_revenue, MenuIndex};

#[test]
fn scaled_serving_is_deterministic_linear_and_solver_faithful() {
    let base_data = AmazonBooksConfig::small().generate(2015);
    let base_market = market_from_data(&base_data, 0.0);
    const FACTOR: usize = 100;
    let data = clone_users(&base_data, FACTOR);
    let market = market_from_data(&data, 0.0);
    assert!(market.n_users() >= 10_000, "scaled market too small for the acceptance check");

    for method in ["Components", "Mixed Greedy"] {
        let outcome = by_name(method).unwrap().run(&base_market);
        let index = MenuIndex::compile(&market, &outcome.config);
        let users = index.all_users();

        // Bit-identical batched revenue at 1/2/8 serve threads.
        let served = index.clone().with_threads(1).expected_revenue(&users);
        for threads in [2usize, 8] {
            let t = index.clone().with_threads(threads).expected_revenue(&users);
            assert_eq!(t.to_bits(), served.to_bits(), "{method} diverged at {threads} threads");
        }

        // Identical clones ⇒ revenue is exactly linear in the factor (up
        // to summation reassociation).
        let base_rev = MenuIndex::compile(&base_market, &outcome.config).expected_revenue_all();
        let expect = base_rev * FACTOR as f64;
        assert!(
            (served - expect).abs() <= 1e-8 * expect.abs().max(1.0),
            "{method}: served {served} vs {FACTOR} x {base_rev} = {expect}"
        );

        // Agreement with core's solver-side menu evaluation of the whole
        // scaled market.
        let solver = outcome.config.expected_revenue(&market);
        assert!(
            (served - solver).abs() <= 1e-8 * solver.abs().max(1.0),
            "{method}: served {served} vs solver-side {solver}"
        );

        // Spot-check per-user bitwise parity (every FACTOR-th clone of a
        // few base users; the proptest suite covers this exhaustively at
        // small scale).
        for &u in &[0u32, 57, 11_000] {
            let a = &index.assign(&[u])[0];
            let solver_u = solver_user_revenue(&market, &outcome.config, u);
            assert_eq!(a.payment.to_bits(), solver_u.to_bits(), "{method} user {u}");
        }

        // Clones of the same base user get identical assignments.
        let n_base = base_market.n_users() as u32;
        let a = index.assign(&[3, 3 + n_base, 3 + 7 * n_base]);
        assert_eq!(a[0].payment.to_bits(), a[1].payment.to_bits());
        assert_eq!(a[0].offers, a[2].offers);
    }
}
