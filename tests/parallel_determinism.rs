//! Differential test suite for the parallel execution layer: every
//! configurator and the WSP comparators must produce **bit-identical**
//! outcomes — revenues, prices, bundle sets, and iteration traces — at 1,
//! 2, 4, and 7 threads, across many generator seeds. This is the
//! determinism contract of `DESIGN.md` §6, enforced end to end through the
//! public facade.
//!
//! Wall-clock fields (`enumeration_time`, per-iteration `elapsed`) are the
//! only values excluded from the comparison: time is the one thing the
//! thread count is *supposed* to change.

use revmax::core::prelude::*;
use revmax::core::wsp;
use revmax::dataset::AmazonBooksConfig;
// The canonical bit-exact outcome serialization lives in the sweep
// engine's report module (one copy — drift between two serializers would
// blind one suite to divergence the other still sees).
use revmax::engine::report::canon_outcome;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];
const SEEDS: std::ops::Range<u64> = 0..8;

/// The seven comparative methods of §6.2, from the single authoritative
/// list in `revmax_core::algorithms::registry`.
fn all_configurators() -> Vec<Box<dyn Configurator>> {
    registry().into_iter().map(|(_, c)| c).collect()
}

/// Synthetic ratings market at unit-test scale, per seed and thread count.
fn generated_market(seed: u64, threads: usize) -> Market {
    let data = AmazonBooksConfig::small().generate(seed);
    let params = Params::default().with_threads(Threads::Fixed(threads));
    let wtp = WtpMatrix::from_ratings(
        data.n_users(),
        data.n_items(),
        data.triples(),
        data.prices(),
        params.lambda,
    );
    Market::new(wtp, params)
}

/// Small dense market (10 items) for the exponential WSP comparators.
fn wsp_market(seed: u64, threads: usize) -> Market {
    let rows: Vec<Vec<f64>> = (0..40u64)
        .map(|u| {
            (0..10u64)
                .map(|i| {
                    // Deterministic pseudo-random WTP in [0, 12) with ~35%
                    // sparsity, varying per seed.
                    let h = (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u * 131 + i * 17))
                        .wrapping_mul(0xD134_2543_DE82_EF95);
                    if h % 100 < 35 {
                        0.0
                    } else {
                        ((h >> 32) % 1200) as f64 / 100.0
                    }
                })
                .collect()
        })
        .collect();
    Market::new(
        WtpMatrix::from_rows(rows),
        Params::default().with_theta(0.05).with_threads(Threads::Fixed(threads)),
    )
}

#[test]
fn configurators_bit_identical_across_thread_counts() {
    for seed in SEEDS {
        let reference: Vec<String> = all_configurators()
            .iter()
            .map(|m| canon_outcome(&m.run(&generated_market(seed, 1))))
            .collect();
        for &threads in &THREAD_COUNTS[1..] {
            let market = generated_market(seed, threads);
            for (m, want) in all_configurators().iter().zip(&reference) {
                let got = canon_outcome(&m.run(&market));
                assert_eq!(
                    &got,
                    want,
                    "{} diverged at {} threads (seed {})",
                    m.name(),
                    threads,
                    seed
                );
            }
        }
    }
}

#[test]
fn wsp_comparators_bit_identical_across_thread_counts() {
    for seed in SEEDS {
        let m1 = wsp_market(seed, 1);
        let table1 = wsp::enumerate_subset_revenues(&m1);
        let ref_opt = canon_outcome(&wsp::optimal(&m1, &table1));
        let ref_gw = canon_outcome(&wsp::greedy_wsp(&m1, &table1));
        for &threads in &THREAD_COUNTS[1..] {
            let mt = wsp_market(seed, threads);
            let table = wsp::enumerate_subset_revenues(&mt);
            for mask in 0..table.revenue.len() {
                assert_eq!(
                    table.revenue[mask].to_bits(),
                    table1.revenue[mask].to_bits(),
                    "subset revenue diverged at mask {mask}, {threads} threads (seed {seed})"
                );
                assert_eq!(
                    table.price[mask].to_bits(),
                    table1.price[mask].to_bits(),
                    "subset price diverged at mask {mask}, {threads} threads (seed {seed})"
                );
            }
            assert_eq!(canon_outcome(&wsp::optimal(&mt, &table)), ref_opt, "seed {seed}");
            assert_eq!(canon_outcome(&wsp::greedy_wsp(&mt, &table)), ref_gw, "seed {seed}");
        }
    }
}

#[test]
fn env_var_default_does_not_change_results() {
    // Whatever REVMAX_THREADS resolves to in this environment (the CI
    // matrix pins 1 and 8), Auto must agree with an explicit Fixed(1).
    let data = AmazonBooksConfig::small().generate(42);
    let build = |threads: Threads| {
        let params = Params::default().with_threads(threads);
        let wtp = WtpMatrix::from_ratings(
            data.n_users(),
            data.n_items(),
            data.triples(),
            data.prices(),
            params.lambda,
        );
        Market::new(wtp, params)
    };
    let auto = build(Threads::Auto);
    let one = build(Threads::Fixed(1));
    for m in all_configurators() {
        assert_eq!(canon_outcome(&m.run(&auto)), canon_outcome(&m.run(&one)), "{}", m.name());
    }
}
