//! Cross-crate property tests on random small markets: structural
//! invariants of every configuration algorithm.

use proptest::prelude::*;
use revmax::core::config::Strategy as BundlingStrategy;
use revmax::core::prelude::{
    Components, Configurator, Market, MixedFreqItemset, MixedGreedy, MixedMatching, Params,
    PureFreqItemset, PureGreedy, PureMatching, SizeCap, WtpMatrix,
};

/// Random dense WTP matrix (small).
fn arb_market(
    max_users: usize,
    max_items: usize,
) -> impl proptest::strategy::Strategy<Value = Market> {
    (2usize..=max_users, 2usize..=max_items, -20i32..=20).prop_flat_map(|(m, n, theta_c)| {
        proptest::collection::vec(proptest::collection::vec(0u32..200, n), m).prop_map(
            move |grid| {
                let rows: Vec<Vec<f64>> = grid
                    .into_iter()
                    .map(|r| r.into_iter().map(|x| x as f64 / 10.0).collect())
                    .collect();
                let theta = theta_c as f64 / 100.0;
                Market::new(WtpMatrix::from_rows(rows), Params::default().with_theta(theta))
            },
        )
    })
}

fn check_outcome(m: &Market, out: &revmax::core::config::Outcome) {
    // Structural validity (partition / subsumption).
    out.config.validate(m.n_items());
    // Revenue within bounds: aggregate WTP, inflated by complementarity
    // (θ > 0 raises every bundle's WTP by (1+θ)) and the adoption bias.
    assert!(out.revenue >= -1e-9, "{}: negative revenue", out.algorithm);
    let bound = m.total_wtp() * (1.0 + m.params().theta.max(0.0)) * m.params().adoption_bias;
    assert!(
        out.revenue <= bound + 1e-6,
        "{}: revenue {} above aggregate WTP bound {}",
        out.algorithm,
        out.revenue,
        bound
    );
    // Reported metrics consistent.
    let cov = revmax::core::metrics::revenue_coverage(out.revenue, m.total_wtp());
    assert!((cov - out.coverage).abs() < 1e-12);
    // Re-evaluation agrees with the search's accounting.
    let ev = out.config.expected_revenue(m);
    assert!(
        (ev - out.revenue).abs() < 1e-6 * out.revenue.max(1.0),
        "{}: re-evaluation {} vs reported {}",
        out.algorithm,
        ev,
        out.revenue
    );
    // Mixed menus respect Guiltinan's constraints w.r.t. their children.
    if out.config.strategy == BundlingStrategy::Mixed {
        for root in &out.config.roots {
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                if !node.children.is_empty() {
                    let max_child = node.children.iter().map(|c| c.price).fold(f64::MIN, f64::max);
                    let sum_child: f64 = node.children.iter().map(|c| c.price).sum();
                    assert!(
                        node.price > max_child - 1e-9,
                        "{}: bundle priced below a component",
                        out.algorithm
                    );
                    assert!(
                        node.price < sum_child + 1e-9,
                        "{}: bundle priced above the component sum",
                        out.algorithm
                    );
                    stack.extend(node.children.iter());
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_algorithms_produce_valid_configs(m in arb_market(12, 7)) {
        let base = Components::optimal().run(&m);
        check_outcome(&m, &base);
        let methods: Vec<Box<dyn Configurator>> = vec![
            Box::new(PureMatching::default()),
            Box::new(PureGreedy::default()),
            Box::new(MixedMatching::default()),
            Box::new(MixedGreedy::default()),
            Box::new(PureFreqItemset::default()),
            Box::new(MixedFreqItemset::default()),
        ];
        for method in methods {
            let out = method.run(&m);
            check_outcome(&m, &out);
            prop_assert!(out.revenue >= base.revenue - 1e-9,
                "{} below components", out.algorithm);
        }
    }

    #[test]
    fn size_caps_are_respected(m in arb_market(10, 6), k in 1usize..4) {
        let capped = Market::new(
            m.wtp().clone(),
            (*m.params()).with_size_cap(SizeCap::AtMost(k)),
        );
        for method in [
            Box::new(PureMatching::default()) as Box<dyn Configurator>,
            Box::new(MixedGreedy::default()),
        ] {
            let out = method.run(&capped);
            prop_assert!(out.config.max_bundle_size() <= k,
                "{} built a bundle of {} > k = {k}", out.algorithm, out.config.max_bundle_size());
        }
    }

    #[test]
    fn pure_matching_is_optimal_at_k2(m in arb_market(8, 6)) {
        // Section 5.1: for k = 2 the matching formulation is exact. Check
        // against the subset DP restricted to sizes <= 2.
        let capped = Market::new(
            m.wtp().clone(),
            (*m.params()).with_size_cap(SizeCap::AtMost(2)),
        );
        let out = PureMatching::default().run(&capped);
        let table = revmax::core::wsp::enumerate_subset_revenues(&capped);
        let n = capped.n_items();
        let mut weights = table.revenue.clone();
        for (mask, w) in weights.iter_mut().enumerate().skip(1) {
            if (mask as u32).count_ones() > 2 {
                *w = 0.0;
            }
        }
        let dp = revmax::ilp::subset_dp::solve_all_subsets(n, &weights);
        prop_assert!((dp.total_weight - out.revenue).abs() < 1e-6,
            "matching {} vs 2-sized optimal {}", out.revenue, dp.total_weight);
    }
}
