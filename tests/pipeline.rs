//! Integration tests: the full synthetic pipeline across crates —
//! generator → k-core → WTP → algorithms → metrics, plus determinism and
//! WSP parity checks.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revmax::core::prelude::*;
use revmax::core::wsp;
use revmax::dataset::{scale, AmazonBooksConfig};

fn small_market(seed: u64) -> Market {
    let data = AmazonBooksConfig::small().generate(seed);
    let params = Params::default();
    let wtp = WtpMatrix::from_ratings(
        data.n_users(),
        data.n_items(),
        data.ratings().iter().map(|r| (r.user, r.item, r.stars)),
        data.prices(),
        params.lambda,
    );
    Market::new(wtp, params)
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = MixedMatching::default().run(&small_market(3));
    let b = MixedMatching::default().run(&small_market(3));
    assert_eq!(a.revenue, b.revenue);
    assert_eq!(a.config, b.config);
}

#[test]
fn configurations_validate_and_reevaluate() {
    let m = small_market(5);
    let methods: Vec<Box<dyn Configurator>> = vec![
        Box::new(Components::optimal()),
        Box::new(PureMatching::default()),
        Box::new(PureGreedy::default()),
        Box::new(MixedMatching::default()),
        Box::new(MixedGreedy::default()),
        Box::new(PureFreqItemset::default()),
        Box::new(MixedFreqItemset::default()),
    ];
    for method in methods {
        let out = method.run(&m);
        out.config.validate(m.n_items());
        // Search-time accounting equals evaluation of the final menu.
        let ev = out.config.expected_revenue(&m);
        assert!(
            (ev - out.revenue).abs() < 1e-6 * out.revenue.max(1.0),
            "{}: evaluation {} != reported {}",
            out.algorithm,
            ev,
            out.revenue
        );
        // Coverage in (0, 1]; revenue bounded by total WTP.
        assert!(out.revenue <= m.total_wtp() + 1e-6);
        assert!(out.coverage > 0.0 && out.coverage <= 1.0);
    }
}

#[test]
fn sampled_revenue_equals_expected_in_step_mode() {
    let m = small_market(7);
    let out = MixedGreedy::default().run(&m);
    let mut rng = StdRng::seed_from_u64(1);
    let sampled = out.config.sampled_revenue(&m, &mut rng, 2);
    assert!((sampled - out.revenue).abs() < 1e-6);
}

#[test]
fn wsp_optimal_dominates_heuristics_on_sampled_items() {
    let data = AmazonBooksConfig::small().generate(11);
    let sub = scale::sample_items(&data, 9, 42);
    let params = Params::default();
    let wtp = WtpMatrix::from_ratings(
        sub.n_users(),
        sub.n_items(),
        sub.ratings().iter().map(|r| (r.user, r.item, r.stars)),
        sub.prices(),
        params.lambda,
    );
    let m = Market::new(wtp, params).with_grid_pricing();
    let table = wsp::enumerate_subset_revenues(&m);
    let opt = wsp::optimal(&m, &table);
    let gw = wsp::greedy_wsp(&m, &table);
    let pm = PureMatching::default().run(&m);
    let pg = PureGreedy::default().run(&m);
    assert!(opt.revenue >= pm.revenue - 1e-6);
    assert!(opt.revenue >= pg.revenue - 1e-6);
    assert!(opt.revenue >= gw.revenue - 1e-6);
    // √N approximation bound.
    assert!(gw.revenue + 1e-9 >= opt.revenue / (9.0f64).sqrt());
    // Heuristics beat the √N-greedy in practice (the paper's Table 4
    // finding); allow equality.
    assert!(pm.revenue >= gw.revenue - 1e-6);
}

#[test]
fn user_cloning_scales_revenue_linearly() {
    // Cloning users doubles every bundle's buyer count at unchanged
    // optimal prices, so Components' revenue exactly doubles.
    let data = AmazonBooksConfig::small().generate(13);
    let params = Params::default();
    let build = |d: &revmax::dataset::RatingsData| {
        let wtp = WtpMatrix::from_ratings(
            d.n_users(),
            d.n_items(),
            d.ratings().iter().map(|r| (r.user, r.item, r.stars)),
            d.prices(),
            params.lambda,
        );
        Market::new(wtp, params)
    };
    let base = Components::optimal().run(&build(&data)).revenue;
    let doubled = Components::optimal().run(&build(&scale::clone_users(&data, 2))).revenue;
    assert!((doubled - 2.0 * base).abs() < 1e-6 * base);
}

#[test]
fn csv_roundtrip_preserves_results() {
    let data = AmazonBooksConfig::small().generate(17);
    // Unique per-process dir so concurrent `cargo test` invocations (and
    // stale files from aborted runs) cannot collide on the CSV paths.
    let dir = std::env::temp_dir().join(format!(
        "revmax_integration_csv_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let rp = dir.join("ratings.csv");
    let pp = dir.join("prices.csv");
    revmax::dataset::io::save(&data, &rp, &pp).unwrap();
    let back = revmax::dataset::io::load(&rp, &pp).unwrap();
    assert_eq!(data, back);
    let params = Params::default();
    let mk = |d: &revmax::dataset::RatingsData| {
        let wtp = WtpMatrix::from_ratings(
            d.n_users(),
            d.n_items(),
            d.ratings().iter().map(|r| (r.user, r.item, r.stars)),
            d.prices(),
            params.lambda,
        );
        Market::new(wtp, params)
    };
    assert_eq!(
        PureGreedy::default().run(&mk(&data)).revenue,
        PureGreedy::default().run(&mk(&back)).revenue
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn k_sweep_is_monotone_for_matching() {
    // Larger k can only help (k=1 equals components) — Figure 5's premise.
    let m = small_market(19);
    let mut last = 0.0;
    for k in [1usize, 2, 3, 5] {
        let params = Params::default().with_size_cap(SizeCap::AtMost(k));
        let m2 = Market::new(m.wtp().clone(), params);
        let out = PureMatching::default().run(&m2);
        assert!(
            out.revenue >= last - 1e-6,
            "revenue dropped when k grew to {k}: {} < {last}",
            out.revenue
        );
        if k == 1 {
            assert!((out.revenue - Components::optimal().run(&m2).revenue).abs() < 1e-9);
        }
        last = out.revenue;
    }
}
