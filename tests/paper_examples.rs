//! Integration tests: the paper's worked examples, end to end through the
//! public facade.

use revmax::core::prelude::*;

/// Table 1's WTP matrix.
fn table1_market(theta: f64) -> Market {
    let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
    Market::new(w, Params::default().with_theta(theta))
}

#[test]
fn table1_components_is_27_dollars() {
    let out = Components::optimal().run(&table1_market(-0.05));
    assert!((out.revenue - 27.0).abs() < 1e-9);
    // pA = 8 (u1, u2), pB = 11 (u3).
    let prices: Vec<f64> = out.config.roots.iter().map(|r| r.price).collect();
    assert!(prices.contains(&8.0));
    assert!(prices.contains(&11.0));
}

#[test]
fn table1_pure_bundling_is_30_40_dollars() {
    let out = PureMatching::default().run(&table1_market(-0.05));
    assert!((out.revenue - 30.4).abs() < 1e-9);
    assert_eq!(out.config.roots.len(), 1);
    assert!((out.config.roots[0].price - 15.2).abs() < 1e-9);
}

#[test]
fn table1_bundle_wtps_match_paper() {
    // wu1,AB = wu3,AB = 15.20, wu2,AB = 9.50 at θ = −0.05.
    let m = table1_market(-0.05);
    let mut s = m.scratch();
    let wtps = m.bundle_wtps(&[0, 1], &mut s).to_vec();
    let mut sorted = wtps;
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!((sorted[0] - 9.5).abs() < 1e-9);
    assert!((sorted[1] - 15.2).abs() < 1e-9);
    assert!((sorted[2] - 15.2).abs() < 1e-9);
}

#[test]
fn section1_consumer_surplus_example() {
    // "u1 obtains a consumer surplus of $12 − $8 = $4."
    let m = table1_market(-0.05);
    let mut s = m.scratch();
    let priced = m.price_pure(&[0], &mut s);
    assert!((priced.price - 8.0).abs() < 1e-9);
    assert!((priced.surplus - 4.0).abs() < 1e-9);
}

#[test]
fn section42_upgrade_counterexample() {
    // pA=8, pB=8, pAB=15.2: u1 buys A alone even though w_AB >= p_AB.
    // Verified through a hand-built mixed configuration.
    use revmax::core::bundle::Bundle;
    use revmax::core::config::{BundleConfig, OfferNode, Strategy};
    let m = table1_market(-0.05);
    let config = BundleConfig {
        strategy: Strategy::Mixed,
        roots: vec![OfferNode {
            bundle: Bundle::new(vec![0, 1]),
            price: 15.2,
            children: vec![
                OfferNode::leaf(Bundle::single(0), 8.0),
                OfferNode::leaf(Bundle::single(1), 8.0),
            ],
        }],
    };
    config.validate(2);
    // u1 pays 8 (A), u2 pays 8 (A), u3 upgrades: held B at 8, add-on A
    // implicit price 7.2 > wA=5 → u3 keeps B only. Total = 8 + 8 + 8 = 24.
    let rev = config.expected_revenue(&m);
    assert!((rev - 24.0).abs() < 1e-9, "revenue {rev}");
}

#[test]
fn ratings_conversion_matches_section_611() {
    // "if λ = 1.25 and the listed price is $10, a 5-star rater is willing
    // to pay $12.50 … ratings 4,3,2,1 map to $10, $7.50, $5, $2.50."
    let w = WtpMatrix::from_ratings(
        5,
        1,
        vec![(0, 0, 5), (1, 0, 4), (2, 0, 3), (3, 0, 2), (4, 0, 1)],
        &[10.0],
        1.25,
    );
    let expect = [12.5, 10.0, 7.5, 5.0, 2.5];
    for (u, e) in expect.iter().enumerate() {
        assert!((w.get(u as u32, 0) - e).abs() < 1e-12);
    }
}

#[test]
fn table1_and_section42_numbers_hold_at_four_threads() {
    // Golden regression for the parallel execution layer: the paper's
    // headline numbers must hold under `--threads 4` exactly as they do at
    // the default, down to the usual tolerance — Table 1's $27 Components
    // / $30.40 pure bundling, and §4.2's $32 mixed bundling with the
    // bundle at $15.20 over components at $8 and $8.
    let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
    let m = Market::new(w, Params::default().with_theta(-0.05).with_threads(Threads::Fixed(4)));
    assert_eq!(m.threads(), 4);

    let components = Components::optimal().run(&m);
    assert!((components.revenue - 27.0).abs() < 1e-9);

    let pure = PureMatching::default().run(&m);
    assert!((pure.revenue - 30.4).abs() < 1e-9);
    assert_eq!(pure.config.roots.len(), 1);
    assert!((pure.config.roots[0].price - 15.2).abs() < 1e-9);

    // Mixed bundling (§4.2 incremental policy): components at $8 / $11,
    // bundle offer at $12 — u1 upgrades (add-on B implicitly $4 = w_B),
    // u3 upgrades (add-on A implicitly $1 ≤ $5), u2 keeps A →
    // $12 + $8 + $12 = $32.
    let mixed = MixedMatching::default().run(&m);
    assert!((mixed.revenue - 32.0).abs() < 1e-9);
    assert_eq!(mixed.config.roots.len(), 1);
    assert!((mixed.config.roots[0].price - 12.0).abs() < 1e-9);
    let mut child_prices: Vec<f64> =
        mixed.config.roots[0].children.iter().map(|c| c.price).collect();
    child_prices.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(child_prices.len(), 2);
    assert!((child_prices[0] - 8.0).abs() < 1e-9);
    assert!((child_prices[1] - 11.0).abs() < 1e-9);
    assert!((mixed.config.expected_revenue(&m) - 32.0).abs() < 1e-9);

    // §4.2's exact pricing building blocks, still intact at 4 threads.
    let mut s = m.scratch();
    let a = m.price_pure(&[0], &mut s);
    assert!((a.price - 8.0).abs() < 1e-9);
    assert!((a.revenue - 16.0).abs() < 1e-9);
    let ab = m.price_pure(&[0, 1], &mut s);
    assert!((ab.price - 15.2).abs() < 1e-9);
    assert!((ab.revenue - 30.4).abs() < 1e-9);
}

#[test]
fn all_methods_never_lose_to_components() {
    // "Bundling outperforms, or at least equals, Components, because it
    // reverts to Components if it cannot find a better solution."
    for theta in [-0.3, -0.05, 0.0, 0.05, 0.3] {
        let m = table1_market(theta);
        let base = Components::optimal().run(&m).revenue;
        let methods: Vec<Box<dyn Configurator>> = vec![
            Box::new(PureMatching::default()),
            Box::new(PureGreedy::default()),
            Box::new(MixedMatching::default()),
            Box::new(MixedGreedy::default()),
            Box::new(PureFreqItemset::default()),
            Box::new(MixedFreqItemset::default()),
        ];
        for method in methods {
            let out = method.run(&m);
            assert!(
                out.revenue >= base - 1e-9,
                "{} lost to components at theta {theta}: {} < {base}",
                out.algorithm,
                out.revenue
            );
        }
    }
}
