//! Failure injection: degenerate markets, hostile inputs, and boundary
//! configurations must either work sensibly or fail loudly — never return
//! silently-wrong revenue.

use revmax::core::prelude::*;

fn all_configurators() -> Vec<Box<dyn Configurator>> {
    vec![
        Box::new(Components::optimal()),
        Box::new(PureMatching::default()),
        Box::new(PureGreedy::default()),
        Box::new(MixedMatching::default()),
        Box::new(MixedGreedy::default()),
        Box::new(PureFreqItemset::default()),
        Box::new(MixedFreqItemset::default()),
    ]
}

#[test]
fn single_user_market() {
    let m = Market::new(WtpMatrix::from_rows(vec![vec![5.0, 3.0, 0.0]]), Params::default());
    for c in all_configurators() {
        let out = c.run(&m);
        out.config.validate(3);
        // One consumer: sell her everything she values, at her valuation.
        assert!((out.revenue - 8.0).abs() < 1e-9, "{}: {}", out.algorithm, out.revenue);
    }
}

#[test]
fn all_zero_wtp_market() {
    let m = Market::new(WtpMatrix::from_rows(vec![vec![0.0, 0.0]; 4]), Params::default());
    for c in all_configurators() {
        let out = c.run(&m);
        out.config.validate(2);
        assert_eq!(out.revenue, 0.0, "{}", out.algorithm);
        assert_eq!(out.coverage, 0.0);
        assert_eq!(out.gain, 0.0);
    }
}

#[test]
fn single_item_market() {
    let m = Market::new(
        WtpMatrix::from_rows(vec![vec![10.0], vec![6.0], vec![2.0]]),
        Params::default(),
    );
    for c in all_configurators() {
        let out = c.run(&m);
        out.config.validate(1);
        // Best single price: 6 × 2 = 12 beats 10 and 3×2.
        assert!((out.revenue - 12.0).abs() < 1e-9, "{}", out.algorithm);
        assert_eq!(out.config.max_bundle_size(), 1);
    }
}

#[test]
fn no_users_market() {
    let m = Market::new(WtpMatrix::from_triples(0, 3, vec![], None), Params::default());
    for c in all_configurators() {
        let out = c.run(&m);
        out.config.validate(3);
        assert_eq!(out.revenue, 0.0, "{}", out.algorithm);
    }
}

#[test]
fn identical_users_never_gain_from_bundling_at_theta_zero() {
    // With identical consumers there is no valuation heterogeneity to
    // smooth: bundling cannot beat components (θ = 0).
    let m = Market::new(WtpMatrix::from_rows(vec![vec![7.0, 3.0, 5.0]; 10]), Params::default());
    for c in all_configurators() {
        let out = c.run(&m);
        assert!((out.gain).abs() < 1e-12, "{} gained {}", out.algorithm, out.gain);
        assert!((out.revenue - 150.0).abs() < 1e-9);
    }
}

#[test]
#[should_panic(expected = "finite")]
fn nan_wtp_rejected() {
    WtpMatrix::from_rows(vec![vec![f64::NAN]]);
}

#[test]
#[should_panic(expected = ">= 0")]
fn negative_wtp_rejected() {
    WtpMatrix::from_rows(vec![vec![-1.0]]);
}

#[test]
#[should_panic(expected = "size cap")]
fn zero_size_cap_rejected() {
    Market::new(
        WtpMatrix::from_rows(vec![vec![1.0]]),
        Params::default().with_size_cap(SizeCap::AtMost(0)),
    );
}

#[test]
fn k_equals_one_is_components_everywhere() {
    let m = Market::new(
        WtpMatrix::from_rows(vec![vec![9.0, 2.0, 4.0], vec![3.0, 8.0, 1.0], vec![5.0, 5.0, 5.0]]),
        Params::default().with_size_cap(SizeCap::AtMost(1)),
    );
    let base = Components::optimal().run(&m).revenue;
    for c in all_configurators() {
        let out = c.run(&m);
        assert!((out.revenue - base).abs() < 1e-9, "{}", out.algorithm);
        assert_eq!(out.config.max_bundle_size(), 1, "{}", out.algorithm);
    }
}

#[test]
fn extreme_theta_substitutes_degenerate_to_components() {
    let m = Market::new(
        WtpMatrix::from_rows(vec![vec![10.0, 10.0], vec![8.0, 9.0]]),
        Params::default().with_theta(-0.99),
    );
    for c in all_configurators() {
        let out = c.run(&m);
        assert_eq!(out.gain, 0.0, "{}", out.algorithm);
    }
}

#[test]
fn tiny_sigmoid_gamma_still_prices_positively() {
    let m = Market::new(
        WtpMatrix::from_rows(vec![vec![10.0, 5.0]; 20]),
        Params::default().with_gamma(0.01),
    );
    let out = Components::optimal().run(&m);
    assert!(out.revenue > 0.0);
    assert!(out.revenue <= m.total_wtp());
}

#[test]
fn sampled_revenue_requires_runs() {
    let m = Market::new(WtpMatrix::from_rows(vec![vec![5.0]]), Params::default());
    let out = Components::optimal().run(&m);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    use rand::SeedableRng;
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        out.config.sampled_revenue(&m, &mut rng, 0)
    }));
    assert!(r.is_err(), "runs = 0 must be rejected");
}
