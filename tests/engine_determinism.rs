//! Differential suite for the sweep engine: the acceptance grid of
//! `ISSUE 4` — **7 configurators × 3 cohorts × 2 θ × 2 seeds** — must
//! produce a bit-identical report (canonical serialization of every cell:
//! revenues, prices, bundle trees, fingerprints) at any engine fan-out,
//! and must report a nonzero cache hit-rate. This extends the
//! `DESIGN.md` §6 determinism contract to the orchestration layer; the
//! CI matrix leg exercises it at `REVMAX_THREADS={1,8}` like the rest of
//! the suite.

use revmax::engine::{run_sweep, SweepSpec};
use revmax::par::Threads;

/// The acceptance grid: all seven registry methods, 3 activity cohorts
/// (plus the whole-market cell), θ ∈ {0, 0.05}, and a deliberately
/// repeated seed so the solve cache has duplicates to collapse.
fn acceptance_spec(threads: Threads) -> SweepSpec {
    let mut spec = SweepSpec::default(); // methods = all seven
    spec.apply("scales", "small").unwrap();
    spec.apply("cohorts", "3").unwrap();
    spec.apply("thetas", "0,0.05").unwrap();
    spec.apply("seeds", "2015,2015").unwrap();
    spec.threads = threads;
    spec
}

#[test]
fn acceptance_grid_bit_identical_across_engine_fan_out() {
    let reference = run_sweep(&acceptance_spec(Threads::Fixed(1))).unwrap();
    // 7 methods × (1 whole + 3 cohorts) × 2 θ × 2 seeds.
    assert_eq!(reference.cells.len(), 7 * 4 * 2 * 2);
    assert!(
        reference.hit_rate() > 0.0,
        "the repeated seed must produce cache hits (got {} hits)",
        reference.cache.hits
    );
    for threads in [2, 8] {
        let got = run_sweep(&acceptance_spec(Threads::Fixed(threads))).unwrap();
        assert_eq!(
            got.canonical(),
            reference.canonical(),
            "sweep diverged at {threads} engine threads"
        );
        // Cache placement is deterministic too — a pure function of the
        // spec, not of scheduling (the probe pass runs before any solve).
        assert_eq!(got.cache, reference.cache, "cache counters diverged at {threads} threads");
    }
}

#[test]
fn env_var_fan_out_does_not_change_results() {
    // Whatever REVMAX_THREADS resolves to (the CI matrix pins 1 and 8),
    // Auto must agree with an explicit Fixed(1) — same canonical report,
    // same hit/miss counters, same fingerprints.
    let auto = run_sweep(&acceptance_spec(Threads::Auto)).unwrap();
    let one = run_sweep(&acceptance_spec(Threads::Fixed(1))).unwrap();
    assert_eq!(auto.canonical(), one.canonical());
    assert_eq!(auto.cache, one.cache);
}

#[test]
fn cached_cells_are_bit_identical_to_their_source() {
    let report = run_sweep(&acceptance_spec(Threads::Fixed(2))).unwrap();
    // Every cached cell must have an uncached twin with the same
    // (fingerprint, method) and identical canonical content.
    for cell in report.cells.iter().filter(|c| c.cached) {
        let source = report
            .cells
            .iter()
            .find(|c| !c.cached && c.fingerprint == cell.fingerprint && c.method == cell.method)
            .expect("cached cell without a solved source");
        assert_eq!(cell.config_canon, source.config_canon);
        assert_eq!(cell.revenue.to_bits(), source.revenue.to_bits());
        assert_eq!(cell.gain.to_bits(), source.gain.to_bits());
        assert!(cell.timing.is_none() && source.timing.is_some());
    }
}
